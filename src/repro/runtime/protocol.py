"""Wire protocol for the asyncio runtime.

Messages are UTF-8 JSON objects prefixed by a 4-byte big-endian length.
Every message carries a ``type`` and an ``id`` (correlation id chosen by
the sender); the remaining fields depend on the type:

Request types (client -> server):

* ``get``  — ``{"key": str, "tags": {...}}``
* ``put``  — ``{"key": str, "value": str (base64), "tags": {...}}``
* ``mget`` — ``{"keys": [str], "tags": {...}}``
* ``stats`` — ``{}`` — scrape the server's observability surface; the
  reply's ``stats`` field carries the counter snapshot and the metrics
  registry snapshot (see ``repro.obs``).  Served from the control plane
  (never queued behind data operations).
* ``probe`` — ``{}`` — Prequal-style load probe.  Served from the
  control plane like ``stats``; the reply carries the usual ``feedback``
  snapshot plus ``in_flight`` (queued + in-service operations), feeding
  the client's probe pool without queueing behind data operations.

Server-push (server -> client, unsolicited):

* ``load_report`` — ``{"feedback": {...}, "in_flight": int}`` with
  ``id=0`` (never a valid correlation id, so clients absorb the feedback
  and drop the frame).  Broadcast periodically to every open connection
  when the server runs with a ``load_report_interval`` — the Dodoor-style
  control plane whose cost scales with servers and time, not with the
  request rate.

Response (server -> client):

* ``reply`` — ``{"ok": bool, "values": {key: str|null}, "error": str|null,
  "feedback": {"queued_work": float, "queue_length": int,
  "rate_sample": float}}``.  When the request's tags carried
  ``"trace": true`` the reply additionally includes ``spans``: one
  ``{key, server_id, enqueue, service_start, service_end, band,
  threshold, promoted}`` object per operation, timestamped with the
  server's monotonic clock.

``tags`` carries the scheduler priority payload (e.g. DAS's ``rpt``) —
the protocol-level realization of "priorities travel with operations".
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ProtocolError

_LEN = struct.Struct(">I")
#: Sanity bound so a corrupt length prefix cannot allocate gigabytes.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

VALID_TYPES = ("get", "put", "mget", "stats", "probe", "reply", "load_report")


@dataclass
class Message:
    """One protocol message (either direction)."""

    type: str
    id: int
    fields: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.type not in VALID_TYPES:
            raise ProtocolError(f"invalid message type {self.type!r}")
        if not isinstance(self.id, int) or self.id < 0:
            raise ProtocolError(f"invalid message id {self.id!r}")

    def encode(self) -> bytes:
        payload = dict(self.fields)
        payload["type"] = self.type
        payload["id"] = self.id
        raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        if len(raw) > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"message too large: {len(raw)} bytes")
        return _LEN.pack(len(raw)) + raw

    @classmethod
    def decode(cls, raw: bytes) -> "Message":
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed message body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("message body must be a JSON object")
        try:
            mtype = payload.pop("type")
            mid = payload.pop("id")
        except KeyError as exc:
            raise ProtocolError(f"message missing field: {exc}") from exc
        return cls(type=mtype, id=mid, fields=payload)


async def write_message(writer: asyncio.StreamWriter, message: Message) -> None:
    """Serialize and send one message."""
    writer.write(message.encode())
    await writer.drain()


async def read_message(reader: asyncio.StreamReader) -> Optional[Message]:
    """Read one message; returns None on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between messages
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"declared message length {length} exceeds limit")
    try:
        raw = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-message") from exc
    return Message.decode(raw)


def encode_value(value: bytes) -> str:
    """Binary-safe value encoding for JSON transport."""
    return base64.b64encode(value).decode("ascii")


def decode_value(encoded: str) -> bytes:
    try:
        return base64.b64decode(encoded.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"invalid value encoding: {exc}") from exc
