"""Load generation against the asyncio runtime (open- or closed-loop).

Drives a :class:`~repro.runtime.client.RuntimeClient` with the same
workload specs the simulator uses (arrivals / fan-out / popularity over a
preloaded keyspace) and measures wall-clock multiget completion times —
the bridge for checking that simulator conclusions carry over to the real
implementation.

Two generation modes, selected by ``mode`` (or by a declarative workload
spec via :meth:`LoadGenerator.from_spec`):

* **open** (default) — requests launch on the arrival process's schedule
  whether or not earlier ones finished (each multiget is an independent
  task), so the generator exerts real queueing pressure instead of
  self-throttling;
* **closed** — ``closed_concurrency`` workers each keep exactly one
  multiget in flight, issuing the next only when the previous completes;
  the offered rate self-throttles to the store's service rate and the
  arrival clock is ignored.  See docs/workloads.md for when each mode is
  the right measurement.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.metrics.summary import SummaryStats, summarize
from repro.runtime.client import RuntimeClient
from repro.workload.arrivals import ArrivalSpec
from repro.workload.fanout import FanoutSpec
from repro.workload.popularity import PopularitySpec


@dataclass
class LoadgenResult:
    """Outcome of one load-generation run."""

    latencies: List[float] = field(default_factory=list)
    errors: int = 0
    launched: int = 0
    wall_seconds: float = 0.0

    def summary(self) -> SummaryStats:
        if not self.latencies:
            raise ConfigError("no completed requests to summarize")
        return summarize(self.latencies)

    @property
    def throughput(self) -> float:
        """Completed multigets per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.latencies) / self.wall_seconds


class LoadGenerator:
    """Fires multigets at a connected client on an arrival schedule.

    Parameters
    ----------
    client:
        A connected :class:`RuntimeClient`.
    keys:
        The preloaded keyspace to draw from (index-addressed).
    arrivals / fanout / popularity:
        Workload specs, identical to the simulator's.
    seed:
        Seeds the three independent sampler streams.
    """

    def __init__(
        self,
        client: RuntimeClient,
        keys: List[str],
        arrivals: ArrivalSpec,
        fanout: FanoutSpec,
        popularity: PopularitySpec,
        seed: int = 0,
        mode: str = "open",
        closed_concurrency: int = 4,
    ):
        if not keys:
            raise ConfigError("keyspace is empty")
        if fanout.max_fanout() > len(keys):
            raise ConfigError("max fanout exceeds keyspace size")
        if mode not in ("open", "closed"):
            raise ConfigError(f"mode must be 'open' or 'closed', got {mode!r}")
        if closed_concurrency < 1:
            raise ConfigError("closed_concurrency must be >= 1")
        self.client = client
        self.keys = list(keys)
        self.mode = mode
        self.closed_concurrency = closed_concurrency
        self._arrivals = arrivals.build(np.random.default_rng(seed))
        self._fanout = fanout.build(np.random.default_rng(seed + 1))
        self._popularity = popularity.build(len(keys), np.random.default_rng(seed + 2))

    @classmethod
    def from_spec(
        cls,
        client: RuntimeClient,
        keys: List[str],
        spec,
        seed: int = 0,
    ) -> "LoadGenerator":
        """Build a generator from a declarative :class:`WorkloadSpec`.

        Uses the spec's arrival shape at its *declared* (absolute) rates —
        the runtime has no analytic capacity model to calibrate a ``load``
        target against — plus its fan-out, popularity, and generation
        mode.  Trace specs are simulator-only and are rejected here.
        """
        from repro.errors import WorkloadError

        if spec.trace is not None:
            raise WorkloadError(
                f"spec {spec.name!r}: trace replay is not supported by the "
                "runtime load generator (simulator only)"
            )
        return cls(
            client,
            keys,
            arrivals=spec.arrivals,
            fanout=spec.fanout,
            popularity=spec.popularity,
            seed=seed,
            mode=spec.mode,
            closed_concurrency=spec.closed_concurrency,
        )

    async def run(
        self,
        n_requests: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> LoadgenResult:
        """Generate load until ``n_requests`` launched or ``duration`` passed."""
        if (n_requests is None) == (duration is None):
            raise ConfigError("set exactly one of n_requests / duration")
        result = LoadgenResult()
        tasks: List[asyncio.Task] = []
        t0 = time.monotonic()
        virtual_now = 0.0

        async def one(keys: List[str]) -> None:
            start = time.monotonic()
            try:
                await self.client.multiget(keys)
            except Exception:  # noqa: BLE001 - counted, not raised
                result.errors += 1
                return
            result.latencies.append(time.monotonic() - start)

        if self.mode == "closed":
            return await self._run_closed(n_requests, duration, result, one, t0)

        while True:
            if n_requests is not None and result.launched >= n_requests:
                break
            gap = self._arrivals.next_interarrival(virtual_now)
            if gap == float("inf"):
                break
            virtual_now += gap
            if duration is not None and virtual_now > duration:
                break
            # Sleep until the scheduled launch instant (open loop).
            delay = virtual_now - (time.monotonic() - t0)
            if delay > 0:
                await asyncio.sleep(delay)
            n = self._fanout.sample()
            indices = self._popularity.sample_distinct(n)
            keys = [self.keys[int(i)] for i in indices]
            tasks.append(asyncio.create_task(one(keys)))
            result.launched += 1

        if tasks:
            await asyncio.gather(*tasks)
        result.wall_seconds = time.monotonic() - t0
        return result

    async def _run_closed(
        self,
        n_requests: Optional[int],
        duration: Optional[float],
        result: LoadgenResult,
        one,
        t0: float,
    ) -> LoadgenResult:
        """Closed-loop: N workers, one outstanding multiget each."""

        def can_issue() -> bool:
            if n_requests is not None and result.launched >= n_requests:
                return False
            if duration is not None and time.monotonic() - t0 >= duration:
                return False
            return True

        async def worker() -> None:
            while can_issue():
                result.launched += 1
                n = self._fanout.sample()
                indices = self._popularity.sample_distinct(n)
                keys = [self.keys[int(i)] for i in indices]
                await one(keys)

        await asyncio.gather(
            *(worker() for _ in range(self.closed_concurrency))
        )
        result.wall_seconds = time.monotonic() - t0
        return result
