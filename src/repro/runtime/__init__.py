"""Asyncio runtime: a real (non-simulated) KV store with DAS scheduling.

The same :mod:`repro.schedulers` queue implementations that drive the
simulator order operations inside real asyncio TCP servers here — the
point being that simulation results carry over to a runnable system.

* :mod:`repro.runtime.protocol` — length-prefixed JSON wire protocol;
* :mod:`repro.runtime.scheduling` — the scheduled executor wrapping a
  :class:`~repro.schedulers.base.ServerQueue`;
* :mod:`repro.runtime.server` — the TCP key-value server;
* :mod:`repro.runtime.client` — the multiget client with DAS tagging;
* :mod:`repro.runtime.cluster` — in-process cluster harness for demos
  and integration tests.
"""

from repro.runtime.client import RuntimeClient
from repro.runtime.loadgen import LoadGenerator, LoadgenResult
from repro.runtime.cluster import LocalCluster
from repro.runtime.protocol import Message, read_message, write_message
from repro.runtime.scheduling import QueuedOp, ScheduledExecutor
from repro.runtime.server import KVServer

__all__ = [
    "KVServer",
    "LoadGenerator",
    "LoadgenResult",
    "LocalCluster",
    "Message",
    "QueuedOp",
    "RuntimeClient",
    "ScheduledExecutor",
    "read_message",
    "write_message",
]
