"""Asyncio runtime: a real (non-simulated) KV store with DAS scheduling.

The same :mod:`repro.schedulers` queue implementations that drive the
simulator order operations inside real asyncio TCP servers here — the
point being that simulation results carry over to a runnable system.

* :mod:`repro.runtime.protocol` — length-prefixed JSON wire protocol;
* :mod:`repro.runtime.scheduling` — the scheduled executor wrapping a
  :class:`~repro.schedulers.base.ServerQueue`;
* :mod:`repro.runtime.server` — the TCP key-value server;
* :mod:`repro.runtime.client` — the multiget client with DAS tagging,
  retries/backoff, hedging, and per-server circuit breakers;
* :mod:`repro.runtime.faults` — scripted fault injection (outages,
  dropped/delayed replies, refused connections) for chaos testing;
* :mod:`repro.runtime.resilience` — retry/hedge/breaker policies and
  the partial-multiget report;
* :mod:`repro.runtime.cluster` — in-process cluster harness for demos
  and integration tests, with chaos controls (inject/crash/restart).
"""

from repro.runtime.client import RuntimeClient
from repro.runtime.cluster import LocalCluster
from repro.runtime.faults import (
    DelayReplies,
    Disconnect,
    DropReplies,
    FaultInjector,
    FaultPolicy,
    Outage,
    RefuseConnections,
)
from repro.runtime.loadgen import LoadGenerator, LoadgenResult
from repro.runtime.protocol import Message, read_message, write_message
from repro.runtime.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    HedgePolicy,
    MultigetReport,
    OperationTimeoutError,
    RetryPolicy,
    ServerUnavailableError,
)
from repro.runtime.scheduling import ExecutorStoppedError, QueuedOp, ScheduledExecutor
from repro.runtime.server import KVServer

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DelayReplies",
    "Disconnect",
    "DropReplies",
    "ExecutorStoppedError",
    "FaultInjector",
    "FaultPolicy",
    "HedgePolicy",
    "KVServer",
    "LoadGenerator",
    "LoadgenResult",
    "LocalCluster",
    "Message",
    "MultigetReport",
    "OperationTimeoutError",
    "Outage",
    "QueuedOp",
    "RefuseConnections",
    "RetryPolicy",
    "RuntimeClient",
    "ScheduledExecutor",
    "ServerUnavailableError",
    "read_message",
    "write_message",
]
