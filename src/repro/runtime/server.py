"""The asyncio TCP key-value server.

Each server owns a :class:`~repro.kvstore.storage.StorageEngine` and a
:class:`~repro.runtime.scheduling.ScheduledExecutor`; connections submit
operations into the executor and the response carries the executor's
feedback snapshot — the runtime realization of piggybacked feedback.

For chaos testing, a :class:`~repro.runtime.faults.FaultInjector` can be
attached: it is consulted when a connection is accepted and once per
message, and can make the server refuse, stall, delay, or disconnect —
the runtime twin of the simulator's outage windows.  :meth:`crash` /
:meth:`restart` additionally model a hard process death: the listener
closes, every live connection is severed, and the executor halts without
draining, until ``restart`` brings the server back on the same port.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import logging
import time
from typing import Any, Dict, Optional, Set

from repro.errors import KeyNotFoundError, ProtocolError
from repro.kvstore.storage import StorageEngine
from repro.obs import MetricsRegistry, OpSpan, TRACE_REQUESTED
from repro.runtime.faults import DELAY, DISCONNECT, DROP, FaultInjector
from repro.runtime.protocol import (
    Message,
    decode_value,
    encode_value,
    read_message,
    write_message,
)
from repro.runtime.scheduling import ExecutorStoppedError, QueuedOp, ScheduledExecutor

logger = logging.getLogger(__name__)


class KVServer:
    """One key-value server listening on a TCP port.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    scheduler / scheduler_params:
        Scheduling policy for the executor.
    byte_rate:
        Emulated backend throughput (bytes/s); None disables throttling.
    per_op_overhead:
        Emulated fixed per-operation cost in seconds.
    fault_injector:
        Optional scripted misbehaviour; defaults to a pass-through
        injector so policies can be added later via ``faults.add(...)``.
    registry:
        Metrics registry to record into.  A cluster passes one shared
        registry so every server's series lands in one scrape; a
        standalone server creates its own.  Series survive
        :meth:`crash`/:meth:`restart` (the server keeps its identity).
    load_report_interval:
        When set, the server broadcasts an unsolicited ``load_report``
        message (feedback snapshot + in-flight count) to every open
        connection each interval — the Dodoor-style control plane whose
        cost is O(connections / interval), independent of request rate.
        The broadcaster dies with :meth:`crash` (a dead server gossips
        nothing) and re-arms on :meth:`restart`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        server_id: int = 0,
        scheduler: str = "das",
        scheduler_params: Optional[Dict[str, Any]] = None,
        byte_rate: Optional[float] = 100e6,
        per_op_overhead: float = 50e-6,
        fault_injector: Optional[FaultInjector] = None,
        registry: Optional[MetricsRegistry] = None,
        load_report_interval: Optional[float] = None,
    ):
        if load_report_interval is not None and load_report_interval <= 0:
            raise ValueError("load_report_interval must be positive")
        self.host = host
        self._requested_port = port
        self.server_id = server_id
        self.storage = StorageEngine(server_id=server_id, track_payloads=True)
        self._scheduler = scheduler
        self._scheduler_params = scheduler_params
        self.registry = registry if registry is not None else MetricsRegistry()
        self.executor = ScheduledExecutor(
            policy_name=scheduler,
            policy_params=scheduler_params,
            byte_rate=byte_rate,
            server_id=server_id,
            registry=self.registry,
        )
        self.byte_rate = byte_rate
        self.per_op_overhead = per_op_overhead
        self.faults = fault_injector if fault_injector is not None else FaultInjector()
        self.load_report_interval = load_report_interval
        self._report_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        sid = str(server_id)
        self._c_connections = self.registry.counter(
            "server_connections_total", "Connections accepted", server=sid
        )
        self._c_ops_served = self.registry.counter(
            "server_ops_total", "Data messages served OK", server=sid
        )
        self._c_errors = self.registry.counter(
            "server_errors_total", "Error replies returned", server=sid
        )
        self._c_crashes = self.registry.counter(
            "server_crashes_total", "Hard crashes injected", server=sid
        )
        self._c_probes = self.registry.counter(
            "server_probes_total", "Load probes answered", server=sid
        )
        self._c_reports = self.registry.counter(
            "server_load_reports_total",
            "Load-report messages delivered to clients",
            server=sid,
        )
        self.registry.gauge(
            "server_active_connections",
            "Currently open connections",
            fn=lambda: len(self._writers),
            server=sid,
        )

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        # Remember the concrete port so crash/restart reuses it and
        # clients can reconnect to the same endpoint.
        self._requested_port = self.port
        if self.load_report_interval is not None:
            self._report_task = asyncio.create_task(
                self._report_loop(), name=f"kv-load-report-{self.server_id}"
            )

    async def stop(self) -> None:
        await self._stop_report_loop()
        await self._close_listener()
        self._drop_connections()
        await self.executor.stop()

    async def crash(self) -> None:
        """Hard death: stop listening, sever connections, halt the executor.

        Unlike :meth:`stop` this does not drain queued work — exactly what
        a killed process would do.  :meth:`restart` brings the server back
        on the same port with storage intact (a restart, not a rebuild).
        """
        self._c_crashes.inc()
        await self._stop_report_loop()
        await self._close_listener()
        self._drop_connections()
        await self.executor.abort()

    async def restart(self) -> None:
        """Come back after :meth:`crash` on the same port."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        self.executor = ScheduledExecutor(
            policy_name=self._scheduler,
            policy_params=self._scheduler_params,
            byte_rate=self.byte_rate,
            server_id=self.server_id,
            registry=self.registry,
        )
        await self.start()

    async def _close_listener(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _drop_connections(self) -> None:
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    async def _stop_report_loop(self) -> None:
        if self._report_task is None:
            return
        self._report_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._report_task
        self._report_task = None

    async def _report_loop(self) -> None:
        """Periodic ``load_report`` broadcast to every open connection.

        ``id=0`` never collides with a client correlation id (clients
        count from 1), so receivers absorb the feedback and drop the
        frame.  A writer that fails mid-broadcast is skipped — the
        connection handler owns its teardown.
        """
        assert self.load_report_interval is not None
        while True:
            await asyncio.sleep(self.load_report_interval)
            message = Message(
                type="load_report",
                id=0,
                fields={
                    "feedback": self.executor.feedback(),
                    "in_flight": self.executor.in_flight,
                },
            )
            for writer in list(self._writers):
                try:
                    await write_message(writer, message)
                except (ConnectionError, OSError):
                    continue
                self._c_reports.inc()

    # ------------------------------------------------------------------
    def _demand(self, value_size: int) -> float:
        if self.byte_rate is None:
            return 0.0
        return self.per_op_overhead + value_size / self.byte_rate

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self.faults.connection_allowed():
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            return
        self._c_connections.inc()
        self._writers.add(writer)
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    logger.warning("protocol error from peer: %s", exc)
                    break
                if message is None:
                    break
                decision = self.faults.decide(message)
                if decision.action == DISCONNECT:
                    break
                if decision.action == DROP:
                    continue
                reply = await self._serve(message)
                if decision.action == DELAY:
                    delay = decision.delay
                    if decision.delay_per_byte > 0.0:
                        delay += (
                            decision.delay_per_byte
                            * self._message_value_bytes(message)
                        )
                    await asyncio.sleep(delay)
                await write_message(writer, reply)
        except (ConnectionError, OSError):
            pass  # peer went away (or crash() severed us) mid-exchange
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _serve(self, message: Message) -> Message:
        extra: Dict[str, Any] = {}
        try:
            if message.type == "get":
                values, spans = await self._do_gets(
                    [message.fields["key"]], message.fields
                )
            elif message.type == "mget":
                values, spans = await self._do_gets(
                    list(message.fields["keys"]), message.fields
                )
            elif message.type == "put":
                values, spans = await self._do_put(message.fields)
            elif message.type == "stats":
                # Control plane: answered directly, never queued behind
                # data operations (a scrape must work on a loaded server).
                values, spans = {}, None
                extra["stats"] = self.stats()
            elif message.type == "probe":
                # Control plane, like stats: a load probe must reflect the
                # server's congestion *now*, not after waiting out the very
                # queue it is trying to measure.  The reply's standard
                # feedback block carries the signals; in_flight adds the
                # in-service operation the queue length misses.
                values, spans = {}, None
                extra["in_flight"] = self.executor.in_flight
                self._c_probes.inc()
            else:
                raise ProtocolError(f"unexpected message type {message.type!r}")
            ok, error = True, None
            self._c_ops_served.inc()
            if spans is not None:
                extra["spans"] = spans
        except KeyError as exc:
            values, ok, error = {}, False, f"missing field {exc}"
            self._c_errors.inc()
        except ExecutorStoppedError:
            values, ok, error = {}, False, "server shutting down"
            self._c_errors.inc()
        except ProtocolError as exc:
            values, ok, error = {}, False, str(exc)
            self._c_errors.inc()
        return Message(
            type="reply",
            id=message.id,
            fields={
                "ok": ok,
                "values": values,
                "error": error,
                "feedback": self.executor.feedback(),
                **extra,
            },
        )

    async def _do_gets(self, keys: list, fields: Dict[str, Any]):
        tags = dict(fields.get("tags", {}))
        futures = []
        ops = []
        for key in keys:
            size = self._stored_size(key)
            op = QueuedOp(key=key, demand=self._demand(size), size=size, tag=dict(tags))
            op.work = self._make_get_work(key)
            ops.append(op)
            futures.append(self.executor.submit(op))
        results = await asyncio.gather(*futures)
        spans = None
        if tags.get(TRACE_REQUESTED):
            spans = [
                dataclasses.asdict(OpSpan.from_op(op, server_id=self.server_id))
                for op in ops
            ]
        return dict(zip(keys, results)), spans

    def _stored_size(self, key: str) -> int:
        """Size lookup for demand estimation (0 when the key is absent)."""
        try:
            return self.storage.get(key, now=time.monotonic()).size
        except KeyNotFoundError:
            return 0

    def _message_value_bytes(self, message: Message) -> int:
        """Value bytes a data message moves (size-dependent fault delays).

        Control-plane messages (stats, probe) move no value bytes, so a
        slow node still answers them promptly — like the real server,
        whose scrapes bypass the service queue.
        """
        fields = message.fields
        if message.type == "get":
            return self._stored_size(fields.get("key", ""))
        if message.type == "mget":
            return sum(self._stored_size(k) for k in fields.get("keys", ()))
        if message.type == "put":
            try:
                return len(decode_value(fields["value"]))
            except (KeyError, AttributeError, ProtocolError):
                return 0
        return 0

    def _make_get_work(self, key: str):
        def work():
            try:
                record = self.storage.get(key, now=time.monotonic())
            except KeyNotFoundError:
                return None
            if record.payload is None:
                return encode_value(b"\x00" * record.size)
            return encode_value(record.payload)

        return work

    async def _do_put(self, fields: Dict[str, Any]):
        key = fields["key"]
        payload = decode_value(fields["value"])
        tags = dict(fields.get("tags", {}))
        op = QueuedOp(
            key=key, demand=self._demand(len(payload)), size=len(payload), tag=tags
        )

        def work():
            self.storage.put(
                key, len(payload), now=time.monotonic(), payload=payload
            )
            return True

        op.work = work
        await self.executor.submit(op)
        spans = None
        if tags.get(TRACE_REQUESTED):
            spans = [dataclasses.asdict(OpSpan.from_op(op, server_id=self.server_id))]
        return {key: True}, spans

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def connections(self) -> int:
        return int(self._c_connections.value)

    @property
    def ops_served(self) -> int:
        return int(self._c_ops_served.value)

    @property
    def errors_returned(self) -> int:
        return int(self._c_errors.value)

    @property
    def crashes(self) -> int:
        return int(self._c_crashes.value)

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for tests and chaos-run reporting.

        The flat keys are kept for back-compatibility; ``metrics`` holds
        the full registry snapshot (the same surface the ``stats`` wire
        message and Prometheus exposition serve).
        """
        return {
            "connections_accepted": self.connections,
            "active_connections": len(self._writers),
            "probes_answered": int(self._c_probes.value),
            "load_reports_sent": int(self._c_reports.value),
            "ops_served": self.ops_served,
            "ops_executed": self.executor.ops_executed,
            "ops_failed": self.executor.ops_failed,
            "errors_returned": self.errors_returned,
            "crashes": self.crashes,
            "faults": self.faults.counters.as_dict(),
            "lanes": self.executor.lane_stats(),
            "metrics": self.registry.snapshot(),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of this server's registry."""
        return self.registry.to_prometheus()
