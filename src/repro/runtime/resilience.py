"""Client-side resilience policies for the asyncio runtime.

Three cooperating pieces, mirroring the simulator's fault-tolerance knobs
(``ClusterConfig.op_timeout`` / ``max_retries``) and the hedging/probing
literature (Prequal, Tars):

* :class:`RetryPolicy` — per-attempt timeout, bounded attempts with
  exponential backoff + jitter, and an optional total deadline budget for
  the whole operation.
* :class:`HedgePolicy` — after the observed latency percentile (or a
  fixed threshold), issue a duplicate sub-request on a secondary
  connection; first reply wins, the loser is cancelled.
* :class:`CircuitBreaker` — consecutive failures open the breaker; while
  open, calls fail fast instead of burning their retry budget, and the
  client marks the server unhealthy in its :class:`ServerEstimates` so
  DAS tags route traffic around it.  After ``reset_timeout`` one probe is
  let through (half-open); success closes the breaker.

All randomness (jitter) flows through a generator seeded by the client,
so failure-handling behaviour is reproducible in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError, ReproError


class ServerUnavailableError(ReproError):
    """The operation could not be completed against its server."""

    def __init__(self, server_id: int, reason: str):
        super().__init__(f"server {server_id} unavailable: {reason}")
        self.server_id = server_id
        self.reason = reason


class OperationTimeoutError(ServerUnavailableError):
    """Every attempt timed out (or the deadline budget ran out)."""


class CircuitOpenError(ServerUnavailableError):
    """Fail-fast rejection: the server's circuit breaker is open."""

    def __init__(self, server_id: int):
        super().__init__(server_id, "circuit breaker open")


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / retry / backoff budget for one sub-request.

    Parameters
    ----------
    op_timeout:
        Per-attempt deadline in seconds.
    max_attempts:
        Total attempts including the first send.
    backoff_base / backoff_factor:
        Sleep before attempt *n* (n >= 2) is
        ``backoff_base * backoff_factor**(n - 2)``, scaled by jitter.
    jitter:
        Fraction of the backoff randomized away: the sleep is drawn
        uniformly from ``[backoff * (1 - jitter), backoff]``.
    total_deadline:
        Optional wall-clock budget for the whole operation across all
        attempts and backoffs; exceeded -> :class:`OperationTimeoutError`.
    """

    op_timeout: float = 0.2
    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    jitter: float = 0.5
    total_deadline: Optional[float] = None

    def __post_init__(self):
        if self.op_timeout <= 0:
            raise ConfigError("op_timeout must be positive")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ConfigError("backoff_base >= 0 and backoff_factor >= 1 required")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")
        if self.total_deadline is not None and self.total_deadline <= 0:
            raise ConfigError("total_deadline must be positive")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff sleep before ``attempt`` (1-based; attempt 1 never waits)."""
        if attempt <= 1 or self.backoff_base == 0:
            return 0.0
        nominal = self.backoff_base * self.backoff_factor ** (attempt - 2)
        if self.jitter == 0:
            return nominal
        return nominal * (1.0 - self.jitter * rng.random())


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to duplicate a slow sub-request.

    A hedge fires once the primary has been outstanding longer than the
    ``percentile`` of recently observed sub-request latencies (needs at
    least ``min_samples`` observations), or ``hedge_after`` seconds when
    set, whichever is defined.  The duplicate goes out on a dedicated
    secondary connection to the same server — a fresh socket sidesteps a
    wedged connection, and the server sees an identical, idempotent read.
    """

    percentile: float = 95.0
    min_samples: int = 20
    hedge_after: Optional[float] = None
    max_hedges: int = 1

    def __post_init__(self):
        if not 0 < self.percentile < 100:
            raise ConfigError("percentile must be in (0, 100)")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ConfigError("hedge_after must be positive")
        if self.max_hedges < 1:
            raise ConfigError("max_hedges must be >= 1")

    def threshold(self, tracker: "LatencyTracker") -> Optional[float]:
        """Delay before hedging, or None when not enough signal yet."""
        if self.hedge_after is not None:
            return self.hedge_after
        return tracker.percentile(self.percentile, self.min_samples)


class LatencyTracker:
    """Sliding window of sub-request latencies for hedge thresholds."""

    def __init__(self, window: int = 512):
        if window < 1:
            raise ConfigError("window must be >= 1")
        self.window = window
        self._samples: List[float] = []
        self._next = 0

    def record(self, latency: float) -> None:
        if len(self._samples) < self.window:
            self._samples.append(latency)
        else:
            self._samples[self._next] = latency
            self._next = (self._next + 1) % self.window

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float, min_samples: int = 1) -> Optional[float]:
        if len(self._samples) < min_samples:
            return None
        return float(np.percentile(self._samples, p))


class CircuitBreaker:
    """Per-server consecutive-failure breaker with half-open probing."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 0.5):
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ConfigError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = float("-inf")
        self.open_count = 0

    def allow(self, now: Optional[float] = None) -> bool:
        """Whether a call may proceed; transitions open -> half-open."""
        if self.state == self.CLOSED:
            return True
        now = time.monotonic() if now is None else now
        if self.state == self.OPEN and now - self.opened_at >= self.reset_timeout:
            self.state = self.HALF_OPEN
            return True
        return self.state == self.HALF_OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: Optional[float] = None) -> bool:
        """Fold in a failure; returns True when this opens the breaker."""
        now = time.monotonic() if now is None else now
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self.opened_at = now
            self.open_count += 1
            return True
        if self.state == self.OPEN:
            self.opened_at = now
        return False


@dataclass
class MultigetReport:
    """Outcome of a ``multiget(..., partial=True)`` call.

    ``failed_servers`` maps server id -> the final error message for its
    slice; ``missing_keys`` are the requested keys owned by those servers
    (absent from the returned value mapping).
    """

    requested: int = 0
    fetched: int = 0
    failed_servers: Dict[int, str] = field(default_factory=dict)
    missing_keys: List[str] = field(default_factory=list)
    retries: int = 0
    hedges: int = 0

    @property
    def complete(self) -> bool:
        return not self.failed_servers

    def __repr__(self) -> str:
        return (
            f"MultigetReport(requested={self.requested}, fetched={self.fetched}, "
            f"failed_servers={sorted(self.failed_servers)}, "
            f"retries={self.retries}, hedges={self.hedges})"
        )
