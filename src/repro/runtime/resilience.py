"""Client-side resilience policies for the asyncio runtime.

Three cooperating pieces, mirroring the simulator's fault-tolerance knobs
(``ClusterConfig.op_timeout`` / ``max_retries``) and the hedging/probing
literature (Prequal, Tars):

* :class:`RetryPolicy` — per-attempt timeout, bounded attempts with
  exponential backoff + jitter, and an optional total deadline budget for
  the whole operation.
* :class:`HedgePolicy` — after the observed latency percentile (or a
  fixed threshold), issue a duplicate sub-request on a secondary
  connection; first reply wins, the loser is cancelled.
* :class:`CircuitBreaker` — consecutive failures open the breaker; while
  open, calls fail fast instead of burning their retry budget, and the
  client marks the server unhealthy in its :class:`ServerEstimates` so
  DAS tags route traffic around it.  After ``reset_timeout`` one probe is
  let through (half-open); success closes the breaker.

All randomness (jitter) flows through a generator seeded by the client,
so failure-handling behaviour is reproducible in tests.

The clock-free pieces (:class:`HedgePolicy`, :class:`LatencyTracker`,
:class:`CircuitBreaker`) live in :mod:`repro.faults.resilience` — the
simulated client consumes the same objects with virtual time — and are
re-exported here for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.faults.resilience import (  # noqa: F401  (re-exported)
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
)


class ServerUnavailableError(ReproError):
    """The operation could not be completed against its server."""

    def __init__(self, server_id: int, reason: str):
        super().__init__(f"server {server_id} unavailable: {reason}")
        self.server_id = server_id
        self.reason = reason


class OperationTimeoutError(ServerUnavailableError):
    """Every attempt timed out (or the deadline budget ran out)."""


class CircuitOpenError(ServerUnavailableError):
    """Fail-fast rejection: the server's circuit breaker is open."""

    def __init__(self, server_id: int):
        super().__init__(server_id, "circuit breaker open")


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / retry / backoff budget for one sub-request.

    Parameters
    ----------
    op_timeout:
        Per-attempt deadline in seconds.
    max_attempts:
        Total attempts including the first send.
    backoff_base / backoff_factor:
        Sleep before attempt *n* (n >= 2) is
        ``backoff_base * backoff_factor**(n - 2)``, scaled by jitter.
    jitter:
        Fraction of the backoff randomized away: the sleep is drawn
        uniformly from ``[backoff * (1 - jitter), backoff]``.
    total_deadline:
        Optional wall-clock budget for the whole operation across all
        attempts and backoffs; exceeded -> :class:`OperationTimeoutError`.
    """

    op_timeout: float = 0.2
    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    jitter: float = 0.5
    total_deadline: Optional[float] = None

    def __post_init__(self):
        if self.op_timeout <= 0:
            raise ConfigError("op_timeout must be positive")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ConfigError("backoff_base >= 0 and backoff_factor >= 1 required")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")
        if self.total_deadline is not None and self.total_deadline <= 0:
            raise ConfigError("total_deadline must be positive")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff sleep before ``attempt`` (1-based; attempt 1 never waits)."""
        if attempt <= 1 or self.backoff_base == 0:
            return 0.0
        nominal = self.backoff_base * self.backoff_factor ** (attempt - 2)
        if self.jitter == 0:
            return nominal
        return nominal * (1.0 - self.jitter * rng.random())


@dataclass
class MultigetReport:
    """Outcome of a ``multiget(..., partial=True)`` call.

    ``failed_servers`` maps server id -> the final error message for its
    slice; ``missing_keys`` are the requested keys owned by those servers
    (absent from the returned value mapping).
    """

    requested: int = 0
    fetched: int = 0
    failed_servers: Dict[int, str] = field(default_factory=dict)
    missing_keys: List[str] = field(default_factory=list)
    retries: int = 0
    hedges: int = 0

    @property
    def complete(self) -> bool:
        return not self.failed_servers

    def __repr__(self) -> str:
        return (
            f"MultigetReport(requested={self.requested}, fetched={self.fetched}, "
            f"failed_servers={sorted(self.failed_servers)}, "
            f"retries={self.retries}, hedges={self.hedges})"
        )
