"""Scheduled executor: the simulator's queues driving real work.

The executor owns a :class:`~repro.schedulers.base.ServerQueue` (any
registered policy — FCFS, SBF, DAS, ...) and a single worker task that
repeatedly pops the queue's pick and executes it.  An optional service
throttle emulates a bounded-rate backend so scheduling visibly matters in
demos; production use would set ``byte_rate=None`` and let real storage
latency be the cost.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.estimator import EwmaEstimator
from repro.obs import MetricsRegistry, register_queue_gauges
from repro.schedulers.base import QueueContext, SchedulingPolicy, ServerQueue
from repro.schedulers.registry import create_policy


class ExecutorStoppedError(RuntimeError):
    """Submit rejected because the executor has been stopped or aborted.

    Raised synchronously by :meth:`ScheduledExecutor.submit` so a caller
    can never be handed a future that no worker will ever resolve.
    """


@dataclass
class QueuedOp:
    """The minimal operation shape the scheduler queues require.

    Mirrors the fields of :class:`repro.kvstore.items.Operation` that the
    queue disciplines read: ``demand``, ``tag``, and ``enqueue_time`` (set
    by the queue itself on push).
    """

    key: str
    demand: float
    #: Value bytes the operation moves — what a size-laned queue routes on.
    size: int = 0
    tag: Dict[str, Any] = field(default_factory=dict)
    enqueue_time: float = float("nan")
    #: Resolved when the operation has been executed (created at submit).
    done: Optional[asyncio.Future] = None
    #: The actual work to run, set by the server.
    work: Optional[Callable[[], Any]] = None

    # The queue bookkeeping also reads nothing else; timestamps below are
    # filled by the executor for observability.
    start_time: float = float("nan")
    finish_time: float = float("nan")


class ScheduledExecutor:
    """Single-worker executor ordered by a scheduling policy.

    Parameters
    ----------
    policy_name / policy_params:
        Scheduler to instantiate from the registry.
    byte_rate:
        When set, each operation additionally sleeps ``bytes / byte_rate``
        seconds to emulate a bounded-throughput backend.
    seed:
        Seed for policies that randomize (e.g. ``random``).
    """

    def __init__(
        self,
        policy_name: str = "das",
        policy_params: Optional[Dict[str, Any]] = None,
        byte_rate: Optional[float] = 100e6,
        server_id: int = 0,
        rate_alpha: float = 0.2,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.policy: SchedulingPolicy = create_policy(
            policy_name, **(policy_params or {})
        )
        self.queue: ServerQueue = self.policy.make_queue(
            QueueContext(server_id=server_id, rng=np.random.default_rng(server_id))
        )
        self.byte_rate = byte_rate
        self._rate_ewma = EwmaEstimator(rate_alpha, initial=1.0)
        self._wakeup = asyncio.Event()
        self._worker: Optional[asyncio.Task] = None
        self._stopping = False
        self._serving = False
        #: Lane names when the policy built a size-laned queue (dispatch
        #: order changes, the worker does not), else None.
        self.lanes = getattr(self.queue, "lanes", None)
        #: Registry instruments.  A shared registry (e.g. the cluster's)
        #: keeps one series per server across executor restarts; a fresh
        #: one is created for standalone use.
        self.registry = registry if registry is not None else MetricsRegistry()
        sid = str(server_id)
        self._ops_executed = self.registry.counter(
            "executor_ops_total", "Operations executed to completion", server=sid
        )
        self._ops_failed = self.registry.counter(
            "executor_op_failures_total", "Operations whose work raised", server=sid
        )
        self._rejected = self.registry.counter(
            "executor_rejected_total", "Submits refused after stop/abort", server=sid
        )
        self._service_hist = self.registry.histogram(
            "executor_service_seconds", "Per-operation service time", server=sid
        )
        self.registry.gauge(
            "executor_rate",
            "EWMA of measured service rate (demand-seconds/second)",
            fn=lambda: self.measured_rate,
            server=sid,
        )
        register_queue_gauges(self.registry, self.queue, server_id)

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._worker is not None:
            raise RuntimeError("executor already started")
        self._stopping = False
        self._worker = asyncio.create_task(self._run(), name="scheduled-executor")

    async def stop(self) -> None:
        self._stopping = True
        self._wakeup.set()
        if self._worker is not None:
            await self._worker
            self._worker = None

    async def abort(self) -> None:
        """Halt immediately without draining queued work (crash semantics).

        Queued operations' futures are cancelled so no submitter awaits a
        result that will never come.
        """
        self._stopping = True
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        while len(self.queue) > 0:
            op = self.queue.pop(time.monotonic())
            if op.done is not None and not op.done.done():
                op.done.cancel()

    def submit(self, op: QueuedOp) -> asyncio.Future:
        """Enqueue an operation; the returned future resolves with its result.

        Submitting before :meth:`start` is allowed (the batch is served
        once the worker runs); submitting after :meth:`stop` or
        :meth:`abort` raises :class:`ExecutorStoppedError` immediately —
        the queue is dead and a future enqueued onto it would hang its
        awaiter forever.
        """
        if self._stopping:
            self._rejected.inc()
            raise ExecutorStoppedError("executor is stopped; operation rejected")
        if op.done is None:
            op.done = asyncio.get_running_loop().create_future()
        self.queue.push(op, time.monotonic())
        self._wakeup.set()
        return op.done

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if len(self.queue) == 0:
                self._wakeup.clear()
                if self._stopping:
                    return
                await self._wakeup.wait()
                continue
            op = self.queue.pop(time.monotonic())
            op.start_time = time.monotonic()
            self._serving = True
            try:
                result = op.work() if op.work is not None else None
                if self.byte_rate is not None and op.demand > 0:
                    await asyncio.sleep(op.demand)
                else:
                    # Yield so a flood of zero-cost ops cannot starve the loop.
                    await asyncio.sleep(0)
            except Exception as exc:  # noqa: BLE001 - forwarded to the waiter
                # The queue saw this op leave service even though it
                # failed; skipping the hook would desynchronize adaptive
                # state (EWMAs, controller) from reality.
                op.finish_time = time.monotonic()
                self._serving = False
                self._ops_failed.inc()
                self._service_hist.observe(op.finish_time - op.start_time)
                self.queue.on_service_complete(op, op.finish_time)
                if not op.done.done():
                    op.done.set_exception(exc)
                continue
            op.finish_time = time.monotonic()
            self._serving = False
            elapsed = op.finish_time - op.start_time
            if op.demand > 0 and elapsed > 0:
                self._rate_ewma.update(op.demand / elapsed)
            self._ops_executed.inc()
            self._service_hist.observe(elapsed)
            self.queue.on_service_complete(op, op.finish_time)
            if not op.done.done():
                op.done.set_result(result)

    # ------------------------------------------------------------------
    @property
    def ops_executed(self) -> int:
        """Operations executed to completion (registry-backed)."""
        return int(self._ops_executed.value)

    @property
    def ops_failed(self) -> int:
        """Operations whose work raised (registry-backed)."""
        return int(self._ops_failed.value)

    @property
    def measured_rate(self) -> float:
        return self._rate_ewma.value_or(1.0)

    @property
    def in_flight(self) -> int:
        """Operations queued plus the one currently in service."""
        return len(self.queue) + (1 if self._serving else 0)

    def feedback(self) -> Dict[str, float]:
        """Feedback snapshot in the wire-protocol shape."""
        rate = max(self.measured_rate, 1e-9)
        return {
            "queued_work": self.queue.queued_demand / rate,
            "queue_length": len(self.queue),
            "rate_sample": self.measured_rate,
        }

    def lane_stats(self) -> Optional[Dict[str, Any]]:
        """Per-lane depth and cutoff snapshot, None for unlaned queues."""
        if self.lanes is None:
            return None
        queue = self.queue
        return {
            "cutoff": queue.cutoff,
            "lanes": {
                lane: {
                    "share": queue.share(lane),
                    "queued": queue.lane_length(lane),
                    "routed": queue.routed[lane],
                    "served": queue.served[lane],
                }
                for lane in self.lanes
            },
        }
