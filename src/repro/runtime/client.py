"""Multiget client for the asyncio runtime.

The client partitions keys over the servers with the same consistent-hash
ring the simulator uses, stamps scheduler tags computed from client-local
estimates (fed by feedback piggybacked on every reply), and gathers the
fanned-out sub-requests — a faithful runtime twin of the simulated
front-end.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import ServerEstimates
from repro.errors import ProtocolError
from repro.kvstore.items import Feedback
from repro.kvstore.partitioning import ConsistentHashRing
from repro.runtime.protocol import (
    Message,
    decode_value,
    encode_value,
    read_message,
    write_message,
)

#: Assumed value size for keys never seen before (bytes).
DEFAULT_SIZE_GUESS = 1024


@dataclass
class _Connection:
    """One server connection plus its in-flight correlation table."""

    server_id: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    pending: Dict[int, asyncio.Future]
    reader_task: Optional[asyncio.Task] = None
    write_lock: Optional[asyncio.Lock] = None


class RuntimeClient:
    """Client issuing gets/puts/multigets against a set of KV servers."""

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        byte_rate_hint: float = 100e6,
        per_op_overhead_hint: float = 50e-6,
        estimator: Optional[ServerEstimates] = None,
    ):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.endpoints = list(endpoints)
        self.ring = ConsistentHashRing(range(len(endpoints)))
        self.estimates = estimator if estimator is not None else ServerEstimates()
        self.byte_rate_hint = byte_rate_hint
        self.per_op_overhead_hint = per_op_overhead_hint
        self._size_cache: Dict[str, int] = {}
        self._connections: Dict[int, _Connection] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def connect(self) -> None:
        for server_id, (host, port) in enumerate(self.endpoints):
            reader, writer = await asyncio.open_connection(host, port)
            conn = _Connection(
                server_id=server_id,
                reader=reader,
                writer=writer,
                pending={},
                write_lock=asyncio.Lock(),
            )
            conn.reader_task = asyncio.create_task(
                self._read_loop(conn), name=f"kv-client-reader-{server_id}"
            )
            self._connections[server_id] = conn

    async def close(self) -> None:
        for conn in self._connections.values():
            if conn.reader_task is not None:
                conn.reader_task.cancel()
                try:
                    await conn.reader_task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._connections.clear()

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            message = await read_message(conn.reader)
            if message is None:
                for fut in conn.pending.values():
                    if not fut.done():
                        fut.set_exception(ConnectionError("server closed connection"))
                conn.pending.clear()
                return
            self._absorb_feedback(conn.server_id, message)
            fut = conn.pending.pop(message.id, None)
            if fut is not None and not fut.done():
                fut.set_result(message)

    def _absorb_feedback(self, server_id: int, message: Message) -> None:
        feedback = message.fields.get("feedback")
        if not feedback:
            return
        self.estimates.observe(
            Feedback(
                server_id=server_id,
                queued_work=float(feedback.get("queued_work", 0.0)),
                queue_length=int(feedback.get("queue_length", 0)),
                rate_sample=float(feedback.get("rate_sample", 1.0)),
                timestamp=time.monotonic(),
            )
        )

    async def _call(self, server_id: int, message: Message) -> Message:
        conn = self._connections.get(server_id)
        if conn is None:
            raise RuntimeError("client not connected")
        fut = asyncio.get_running_loop().create_future()
        conn.pending[message.id] = fut
        async with conn.write_lock:
            await write_message(conn.writer, message)
        return await fut

    # ------------------------------------------------------------------
    # Tagging (the distributed half of DAS)
    # ------------------------------------------------------------------
    def _demand_guess(self, key: str) -> float:
        size = self._size_cache.get(key, DEFAULT_SIZE_GUESS)
        return self.per_op_overhead_hint + size / self.byte_rate_hint

    def _tags_for(self, by_server: Dict[int, List[str]]) -> Dict[str, float]:
        """Compute DAS/SBF/SJF tags for a request spanning ``by_server``."""
        now = time.monotonic()
        bottleneck = 0.0
        rpt = 0.0
        total = 0.0
        for server_id, keys in by_server.items():
            slice_demand = sum(self._demand_guess(k) for k in keys)
            total += slice_demand
            bottleneck = max(bottleneck, slice_demand)
            rate = max(self.estimates.rate(server_id), 1e-9)
            rpt = max(rpt, slice_demand / rate)
        return {
            "rpt": rpt,
            "bottleneck": bottleneck,
            "total_demand": total,
            "deadline": now + 10.0 * total + 1e-3,
        }

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def owner(self, key: str) -> int:
        return self.ring.owner(key)

    async def put(self, key: str, value: bytes) -> None:
        server_id = self.owner(key)
        tags = self._tags_for({server_id: [key]})
        reply = await self._call(
            server_id,
            Message(
                type="put",
                id=next(self._ids),
                fields={"key": key, "value": encode_value(value), "tags": tags},
            ),
        )
        if not reply.fields.get("ok"):
            raise ProtocolError(f"put failed: {reply.fields.get('error')}")
        self._size_cache[key] = len(value)

    async def get(self, key: str) -> Optional[bytes]:
        values = await self.multiget([key])
        return values[key]

    async def multiget(self, keys: Sequence[str]) -> Dict[str, Optional[bytes]]:
        """Fetch many keys in parallel across their owner servers.

        Returns a key -> value mapping with None for missing keys.  The
        request's completion time is governed by its slowest sub-request —
        the quantity DAS's tags are computed to minimize.
        """
        if not keys:
            return {}
        by_server: Dict[int, List[str]] = {}
        for key in keys:
            by_server.setdefault(self.owner(key), []).append(key)
        tags = self._tags_for(by_server)

        async def fetch(server_id: int, server_keys: List[str]) -> Dict[str, Optional[bytes]]:
            reply = await self._call(
                server_id,
                Message(
                    type="mget",
                    id=next(self._ids),
                    fields={"keys": server_keys, "tags": tags},
                ),
            )
            if not reply.fields.get("ok"):
                raise ProtocolError(f"mget failed: {reply.fields.get('error')}")
            out: Dict[str, Optional[bytes]] = {}
            for key, encoded in reply.fields.get("values", {}).items():
                value = decode_value(encoded) if encoded is not None else None
                out[key] = value
                if value is not None:
                    self._size_cache[key] = len(value)
            return out

        results = await asyncio.gather(
            *(fetch(sid, ks) for sid, ks in by_server.items())
        )
        merged: Dict[str, Optional[bytes]] = {}
        for chunk in results:
            merged.update(chunk)
        # Preserve the caller's key set even if a server omitted entries.
        for key in keys:
            merged.setdefault(key, None)
        return merged
