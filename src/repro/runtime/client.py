"""Multiget client for the asyncio runtime.

The client partitions keys over the servers with the same consistent-hash
ring the simulator uses, stamps scheduler tags computed from client-local
estimates (fed by feedback piggybacked on every reply), and gathers the
fanned-out sub-requests — a faithful runtime twin of the simulated
front-end.

Fault tolerance is opt-in through :class:`~repro.runtime.resilience`
policies: a :class:`RetryPolicy` arms per-attempt timeouts with
exponential backoff, a :class:`HedgePolicy` duplicates slow idempotent
reads onto a secondary connection, and a per-server circuit breaker fails
fast on repeatedly dead servers while feeding the unhealthiness into
:class:`ServerEstimates` so DAS tags route around them.  Dead connections
are replaced automatically on the next use; ``multiget(..., partial=True)``
degrades gracefully, returning what it could fetch plus a
:class:`MultigetReport`.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.estimator import ServerEstimates
from repro.errors import ProtocolError
from repro.kvstore.items import Feedback
from repro.kvstore.partitioning import ConsistentHashRing
from repro.obs import (
    MetricsRegistry,
    OpSpan,
    RequestTrace,
    TRACE_REQUESTED,
    Tracer,
)
from repro.runtime.protocol import (
    Message,
    decode_value,
    encode_value,
    read_message,
    write_message,
)
from repro.runtime.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    HedgePolicy,
    LatencyTracker,
    MultigetReport,
    OperationTimeoutError,
    RetryPolicy,
    ServerUnavailableError,
)
from repro.selection import (
    FEEDBACK_WIRE_BYTES,
    PROBE_WIRE_BYTES,
    create_selection_policy,
    selection_policy_needs,
)

logger = logging.getLogger(__name__)

#: Assumed value size for keys never seen before (bytes).
DEFAULT_SIZE_GUESS = 1024

#: Synthetic feedback pushed when a breaker opens: the server looks like a
#: minute of queued work at a crawl, so DAS tags steer giants elsewhere.
UNHEALTHY_QUEUED_WORK = 60.0
UNHEALTHY_RATE_SAMPLE = 1e-3


@dataclass
class _Connection:
    """One server connection plus its in-flight correlation table."""

    server_id: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    pending: Dict[int, asyncio.Future]
    reader_task: Optional[asyncio.Task] = None
    write_lock: Optional[asyncio.Lock] = None
    closed: bool = False


class RuntimeClient:
    """Client issuing gets/puts/multigets against a set of KV servers.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` per server; index order defines server ids.
    retry_policy:
        When set, every sub-request gets per-attempt timeouts, bounded
        retries with backoff, and a per-server circuit breaker.  When
        None (default) the client is "unprotected": it waits forever,
        exactly as the pre-fault-tolerance client did.
    hedge_policy:
        When set (requires ``retry_policy``), slow idempotent reads are
        duplicated onto a secondary connection; first reply wins.
    breaker_failure_threshold / breaker_reset_timeout:
        Circuit-breaker tuning (only used with ``retry_policy``).
    seed:
        Seed for backoff jitter, making retry timing reproducible.
    registry:
        Metrics registry for the client's counters/histograms (a shared
        cluster registry, or a private one by default).
    tracer:
        When set and enabled, sampled multigets are traced end-to-end:
        the client stamps ``trace`` into the tags, servers return per-op
        spans, and the assembled :class:`RequestTrace` lands in the
        tracer (tag -> enqueue -> service -> reply).
    replication_factor / selection / selection_params:
        Replicated reads: keys live on the first ``replication_factor``
        servers of their preference list; GETs are routed by the named
        :mod:`repro.selection` policy (``"primary"`` preserves the
        unreplicated behaviour) and PUTs fan out to every replica.
    probes_per_request / probe_timeout:
        For probe-based policies (``wants_probes``, e.g. ``prequal``):
        after each multiget dispatch up to ``probes_per_request``
        control-plane ``probe`` messages are fired at randomly chosen
        replicas of the touched keys; replies refresh the policy's pool
        through the same feedback funnel as data replies.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        byte_rate_hint: float = 100e6,
        per_op_overhead_hint: float = 50e-6,
        estimator: Optional[ServerEstimates] = None,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_policy: Optional[HedgePolicy] = None,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout: float = 0.5,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        replication_factor: int = 1,
        selection: str = "primary",
        selection_params: Optional[Dict] = None,
        probes_per_request: int = 2,
        probe_timeout: float = 0.25,
    ):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        if hedge_policy is not None and retry_policy is None:
            raise ValueError("hedge_policy requires retry_policy")
        if not 1 <= replication_factor <= len(endpoints):
            raise ValueError(
                f"replication_factor {replication_factor} out of range for "
                f"{len(endpoints)} endpoints"
            )
        if probes_per_request < 0:
            raise ValueError("probes_per_request must be >= 0")
        if probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive")
        self.endpoints = list(endpoints)
        self.ring = ConsistentHashRing(range(len(endpoints)))
        self.estimates = estimator if estimator is not None else ServerEstimates()
        self.replication_factor = replication_factor
        needs = selection_policy_needs(selection)
        self.selection_policy = create_selection_policy(
            selection,
            rng=np.random.default_rng(seed + 1) if needs.rng else None,
            estimates=self.estimates if needs.estimates else None,
            **(selection_params or {}),
        )
        #: primary at rf=1 is the pre-replication fast path: no tracking.
        self._primary_reads = (
            self.selection_policy.name == "primary" or replication_factor == 1
        )
        track = not self._primary_reads
        self._track_inflight = track and self.selection_policy.wants_inflight
        self._track_feedback = track and self.selection_policy.wants_feedback
        self._want_probes = (
            track and self.selection_policy.wants_probes and probes_per_request > 0
        )
        self.probes_per_request = probes_per_request
        self.probe_timeout = probe_timeout
        self._probe_rng = np.random.default_rng(seed + 2)
        self._probe_tasks: Set[asyncio.Task] = set()
        self.byte_rate_hint = byte_rate_hint
        self.per_op_overhead_hint = per_op_overhead_hint
        self.retry_policy = retry_policy
        self.hedge_policy = hedge_policy
        self._rng = np.random.default_rng(seed)
        self._size_cache: Dict[str, int] = {}
        self._connections: Dict[int, _Connection] = {}
        self._hedge_connections: Dict[int, _Connection] = {}
        self._connect_locks: Dict[Tuple[int, bool], asyncio.Lock] = {}
        self._ever_connected: set = set()
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_reset_timeout = breaker_reset_timeout
        self._latency = LatencyTracker()
        self._ids = itertools.count(1)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._trace_ids = itertools.count(1)
        #: name -> registry Counter; bump with ``self.counters[name].inc()``.
        self.counters = {
            name: self.registry.counter(f"client_{name}_total", help)
            for name, help in (
                ("retries", "Retry attempts sent"),
                ("timeouts", "Attempts that timed out"),
                ("connection_errors", "Attempts that died on the wire"),
                ("reconnects", "Connections re-established"),
                ("hedges_sent", "Hedge duplicates issued"),
                ("hedges_won", "Hedges that beat the primary"),
                ("hedges_lost", "Hedges the primary beat"),
                ("breaker_opens", "Circuit breakers tripped open"),
                ("breaker_rejections", "Calls rejected by an open breaker"),
                ("partial_multigets", "Multigets that returned partial data"),
                ("probes_sent", "Control-plane load probes issued"),
                ("probes_ok", "Probes answered in time"),
                ("probes_failed", "Probes that timed out or died"),
                ("load_reports", "Unsolicited load-report broadcasts absorbed"),
            )
        }
        if not self._primary_reads:
            self.registry.gauge(
                "client_selection_decisions",
                "Read-replica selections made by the client's policy",
                fn=lambda: float(self.selection_policy.decisions),
                policy=self.selection_policy.name,
            )
        self._attempt_latency = self.registry.histogram(
            "client_attempt_latency_seconds", "Per-attempt round-trip latency"
        )
        self.registry.gauge(
            "client_breakers_open",
            "Breakers currently open",
            fn=lambda: sum(
                1 for b in self._breakers.values() if b.state == CircuitBreaker.OPEN
            ),
        )

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def connect(self) -> None:
        for server_id in range(len(self.endpoints)):
            await self._open_connection(server_id, hedge=False)

    async def _open_connection(self, server_id: int, hedge: bool) -> _Connection:
        host, port = self.endpoints[server_id]
        reader, writer = await asyncio.open_connection(host, port)
        role = "hedge" if hedge else "main"
        conn = _Connection(
            server_id=server_id,
            reader=reader,
            writer=writer,
            pending={},
            write_lock=asyncio.Lock(),
        )
        conn.reader_task = asyncio.create_task(
            self._read_loop(conn), name=f"kv-client-reader-{role}-{server_id}"
        )
        pool = self._hedge_connections if hedge else self._connections
        pool[server_id] = conn
        if (server_id, hedge) in self._ever_connected:
            self.counters["reconnects"].inc()
        self._ever_connected.add((server_id, hedge))
        return conn

    async def _ensure_connection(self, server_id: int, hedge: bool = False) -> _Connection:
        """Live connection to ``server_id``, replacing a dead one if needed."""
        pool = self._hedge_connections if hedge else self._connections
        conn = pool.get(server_id)
        if conn is not None and not conn.closed:
            return conn
        lock = self._connect_locks.setdefault((server_id, hedge), asyncio.Lock())
        async with lock:
            conn = pool.get(server_id)  # someone may have won the race
            if conn is not None and not conn.closed:
                return conn
            return await self._open_connection(server_id, hedge)

    def _fail_connection(self, conn: _Connection, exc: BaseException) -> None:
        """Mark ``conn`` dead and fail its in-flight futures fast."""
        conn.closed = True
        for fut in conn.pending.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionError(f"connection to server {conn.server_id} lost: {exc}")
                )
        conn.pending.clear()
        conn.writer.close()

    async def close(self) -> None:
        for task in list(self._probe_tasks):
            task.cancel()
        if self._probe_tasks:
            await asyncio.gather(*self._probe_tasks, return_exceptions=True)
            self._probe_tasks.clear()
        for conn in list(self._connections.values()) + list(
            self._hedge_connections.values()
        ):
            if conn.reader_task is not None:
                conn.reader_task.cancel()
                try:
                    await conn.reader_task
                except asyncio.CancelledError:
                    pass
                except Exception:  # noqa: BLE001 - teardown must not mask bugs silently
                    logger.exception(
                        "reader task for server %d raised during close", conn.server_id
                    )
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._connections.clear()
        self._hedge_connections.clear()

    async def _read_loop(self, conn: _Connection) -> None:
        try:
            while True:
                message = await read_message(conn.reader)
                if message is None:
                    raise ConnectionError("server closed connection")
                self._absorb_feedback(conn.server_id, message)
                fut = conn.pending.pop(message.id, None)
                if fut is not None and not fut.done():
                    fut.set_result(message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - any wire error kills the connection
            self._fail_connection(conn, exc)

    def _absorb_feedback(self, server_id: int, message: Message) -> None:
        feedback = message.fields.get("feedback")
        if not feedback:
            return
        if message.type == "load_report":
            self.counters["load_reports"].inc()
        # Probe replies and load reports additionally carry in_flight
        # (queued + in-service), a strictly better requests-in-flight
        # signal than queue_length.
        queue_length = int(
            message.fields.get("in_flight", feedback.get("queue_length", 0))
        )
        fb = Feedback(
            server_id=server_id,
            queued_work=float(feedback.get("queued_work", 0.0)),
            queue_length=queue_length,
            rate_sample=float(feedback.get("rate_sample", 1.0)),
            timestamp=time.monotonic(),
        )
        self.estimates.observe(fb)
        if self._track_feedback:
            # The one funnel into the policy: piggybacked replies, probe
            # replies, and load-report broadcasts all land here via the
            # shared read loop.  Control-plane accounting tags the kind:
            # a broadcast report is a dedicated message, a probe reply is
            # the return leg of a round-trip, and piggybacked feedback
            # rides an existing data reply (bytes only, zero messages).
            if message.type == "load_report":
                self.selection_policy.record_control_message(
                    "report", payload_bytes=FEEDBACK_WIRE_BYTES
                )
            elif "in_flight" in message.fields:
                self.selection_policy.record_control_message(
                    "probe", payload_bytes=FEEDBACK_WIRE_BYTES
                )
            else:
                self.selection_policy.record_control_message(
                    "feedback", messages=0, payload_bytes=FEEDBACK_WIRE_BYTES
                )
            self.selection_policy.observe_feedback(fb, now=time.monotonic())

    # ------------------------------------------------------------------
    # Resilient call machinery
    # ------------------------------------------------------------------
    def _breaker(self, server_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(server_id)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._breaker_failure_threshold,
                reset_timeout=self._breaker_reset_timeout,
            )
            self._breakers[server_id] = breaker
        return breaker

    def _mark_unhealthy(self, server_id: int) -> None:
        """Feed breaker-open into the estimates so DAS routes around it."""
        self.counters["breaker_opens"].inc()
        self.estimates.observe(
            Feedback(
                server_id=server_id,
                queued_work=UNHEALTHY_QUEUED_WORK,
                queue_length=10**6,
                rate_sample=UNHEALTHY_RATE_SAMPLE,
                timestamp=time.monotonic(),
            )
        )

    async def _attempt(
        self,
        server_id: int,
        mtype: str,
        fields: Dict,
        timeout: Optional[float],
        hedge: bool = False,
    ) -> Message:
        """One send/await round-trip over one connection."""
        conn = await self._ensure_connection(server_id, hedge=hedge)
        message = Message(type=mtype, id=next(self._ids), fields=fields)
        fut = asyncio.get_running_loop().create_future()
        conn.pending[message.id] = fut
        try:
            async with conn.write_lock:
                await write_message(conn.writer, message)
        except BaseException:
            # The write failed (or was cancelled): the reply can never
            # arrive, so drop the correlation entry instead of leaking it.
            conn.pending.pop(message.id, None)
            raise
        sent_at = time.monotonic()
        try:
            if timeout is None:
                reply = await fut
            else:
                reply = await asyncio.wait_for(fut, timeout)
        finally:
            conn.pending.pop(message.id, None)
        elapsed = time.monotonic() - sent_at
        self._latency.record(elapsed)
        self._attempt_latency.observe(elapsed)
        return reply

    async def _attempt_maybe_hedged(
        self, server_id: int, mtype: str, fields: Dict, timeout: Optional[float]
    ) -> Message:
        """One attempt, duplicated onto a hedge connection if it runs slow."""
        policy = self.hedge_policy
        threshold = policy.threshold(self._latency) if policy is not None else None
        primary = asyncio.create_task(
            self._attempt(server_id, mtype, fields, timeout)
        )
        if threshold is None or (timeout is not None and threshold >= timeout):
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=threshold)
        if primary in done:
            return primary.result()
        self.counters["hedges_sent"].inc()
        hedge = asyncio.create_task(
            self._attempt(server_id, mtype, fields, timeout, hedge=True)
        )
        tasks = {primary, hedge}
        last_exc: Optional[BaseException] = None
        while tasks:
            done, tasks = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED
            )
            winner = next((t for t in done if t.exception() is None), None)
            if winner is not None:
                for loser in tasks:
                    loser.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                self.counters[
                    "hedges_won" if winner is hedge else "hedges_lost"
                ].inc()
                return winner.result()
            last_exc = next(iter(done)).exception()
        assert last_exc is not None
        raise last_exc

    async def _call(
        self, server_id: int, mtype: str, fields: Dict, idempotent: bool = False
    ) -> Message:
        """Send one request with whatever protection is configured.

        Without a retry policy this awaits the reply indefinitely (legacy
        behaviour).  With one, each attempt is bounded by ``op_timeout``,
        failures back off exponentially with jitter, the whole operation
        respects ``total_deadline``, and a per-server circuit breaker
        converts a dead server into fast :class:`CircuitOpenError`
        rejections.  Hedging applies to idempotent reads only.
        """
        policy = self.retry_policy
        hedged = idempotent and self.hedge_policy is not None
        if policy is None:
            return await self._attempt(server_id, mtype, fields, None)
        breaker = self._breaker(server_id)
        started = time.monotonic()
        last_exc: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            if not breaker.allow():
                self.counters["breaker_rejections"].inc()
                raise CircuitOpenError(server_id)
            if attempt > 1:
                self.counters["retries"].inc()
                pause = policy.backoff(attempt, self._rng)
                if pause > 0:
                    await asyncio.sleep(pause)
            timeout = policy.op_timeout
            if policy.total_deadline is not None:
                remaining = policy.total_deadline - (time.monotonic() - started)
                if remaining <= 0:
                    raise OperationTimeoutError(
                        server_id, f"deadline budget spent after {attempt - 1} attempts"
                    )
                timeout = min(timeout, remaining)
            try:
                if hedged:
                    reply = await self._attempt_maybe_hedged(
                        server_id, mtype, fields, timeout
                    )
                else:
                    reply = await self._attempt(server_id, mtype, fields, timeout)
            except asyncio.TimeoutError as exc:
                self.counters["timeouts"].inc()
                last_exc = exc
            except (ConnectionError, OSError) as exc:
                self.counters["connection_errors"].inc()
                last_exc = exc
            else:
                breaker.record_success()
                return reply
            if breaker.record_failure():
                self._mark_unhealthy(server_id)
        if isinstance(last_exc, asyncio.TimeoutError):
            raise OperationTimeoutError(
                server_id, f"all {policy.max_attempts} attempts timed out"
            ) from last_exc
        raise ServerUnavailableError(server_id, str(last_exc)) from last_exc

    # ------------------------------------------------------------------
    # Tagging (the distributed half of DAS)
    # ------------------------------------------------------------------
    def _demand_guess(self, key: str) -> float:
        size = self._size_cache.get(key, DEFAULT_SIZE_GUESS)
        return self.per_op_overhead_hint + size / self.byte_rate_hint

    def _tags_for(self, by_server: Dict[int, List[str]]) -> Dict[str, float]:
        """Compute DAS/SBF/SJF tags for a request spanning ``by_server``."""
        now = time.monotonic()
        bottleneck = 0.0
        rpt = 0.0
        total = 0.0
        for server_id, keys in by_server.items():
            slice_demand = sum(self._demand_guess(k) for k in keys)
            total += slice_demand
            bottleneck = max(bottleneck, slice_demand)
            rate = max(self.estimates.rate(server_id), 1e-9)
            rpt = max(rpt, slice_demand / rate)
        return {
            "rpt": rpt,
            "bottleneck": bottleneck,
            "total_demand": total,
            "deadline": now + 10.0 * total + 1e-3,
        }

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def owner(self, key: str) -> int:
        return self.ring.owner(key)

    def read_replica(self, key: str) -> int:
        """The replica chosen to serve reads of ``key`` this instant."""
        if self._primary_reads:
            return self.ring.owner(key)
        candidates = self.ring.preference_list(key, self.replication_factor)
        return self.selection_policy.select(key, candidates, time.monotonic())

    def write_set(self, key: str) -> List[int]:
        """Every replica a PUT of ``key`` must reach."""
        if self.replication_factor == 1:
            return [self.ring.owner(key)]
        return list(self.ring.preference_list(key, self.replication_factor))

    async def _tracked_call(
        self, server_id: int, mtype: str, fields: Dict, idempotent: bool = False
    ) -> Message:
        """:meth:`_call`, reported to the selection policy when it cares."""
        if not self._track_inflight:
            return await self._call(server_id, mtype, fields, idempotent=idempotent)
        started = time.monotonic()
        self.selection_policy.on_dispatch(server_id, started)
        try:
            return await self._call(server_id, mtype, fields, idempotent=idempotent)
        finally:
            now = time.monotonic()
            self.selection_policy.on_response(server_id, now, now - started)

    async def put(self, key: str, value: bytes) -> None:
        servers = self.write_set(key)
        tags = self._tags_for({sid: [key] for sid in servers})
        fields = {"key": key, "value": encode_value(value), "tags": tags}
        replies = await asyncio.gather(
            *(self._tracked_call(sid, "put", dict(fields)) for sid in servers)
        )
        for reply in replies:
            if not reply.fields.get("ok"):
                raise ProtocolError(f"put failed: {reply.fields.get('error')}")
        self._size_cache[key] = len(value)

    async def get(self, key: str) -> Optional[bytes]:
        values = await self.multiget([key])
        return values[key]

    async def _fetch(
        self,
        server_id: int,
        server_keys: List[str],
        tags: Dict[str, float],
        span_sink: Optional[List[dict]] = None,
    ) -> Dict[str, Optional[bytes]]:
        reply = await self._tracked_call(
            server_id,
            "mget",
            {"keys": server_keys, "tags": tags},
            idempotent=True,
        )
        if not reply.fields.get("ok"):
            raise ProtocolError(f"mget failed: {reply.fields.get('error')}")
        if span_sink is not None:
            span_sink.extend(reply.fields.get("spans") or [])
        out: Dict[str, Optional[bytes]] = {}
        for key, encoded in reply.fields.get("values", {}).items():
            value = decode_value(encoded) if encoded is not None else None
            out[key] = value
            if value is not None:
                self._size_cache[key] = len(value)
        return out

    async def multiget(
        self, keys: Sequence[str], partial: bool = False
    ):
        """Fetch many keys in parallel across their owner servers.

        With ``partial=False`` (default) returns a key -> value mapping
        with None for missing keys, raising if any sub-request ultimately
        fails.  With ``partial=True`` returns ``(values, report)``:
        ``values`` holds exactly the keys whose owner servers answered,
        and the :class:`MultigetReport` names the servers (and their
        keys) that did not.  The request's completion time is governed by
        its slowest sub-request — the quantity DAS's tags are computed to
        minimize.
        """
        if not keys:
            return ({}, MultigetReport()) if partial else {}
        by_server: Dict[int, List[str]] = {}
        for key in keys:
            by_server.setdefault(self.read_replica(key), []).append(key)
        self._maybe_probe(keys)
        tag_time = time.monotonic()
        tags = self._tags_for(by_server)
        span_sink: Optional[List[dict]] = None
        if self.tracer is not None and self.tracer.should_sample():
            tags[TRACE_REQUESTED] = True
            span_sink = []
        server_ids = list(by_server)
        retries_before = self.counters["retries"].value
        hedges_before = self.counters["hedges_sent"].value

        results = await asyncio.gather(
            *(
                self._fetch(sid, by_server[sid], tags, span_sink=span_sink)
                for sid in server_ids
            ),
            return_exceptions=partial,
        )
        if span_sink is not None:
            self.tracer.record(
                RequestTrace(
                    request_id=next(self._trace_ids),
                    tag_time=tag_time,
                    reply_time=time.monotonic(),
                    ops=[OpSpan(**span) for span in span_sink],
                    meta={"keys": len(keys), "servers": len(server_ids)},
                )
            )
        merged: Dict[str, Optional[bytes]] = {}
        report = MultigetReport(requested=len(keys))
        for server_id, chunk in zip(server_ids, results):
            if isinstance(chunk, BaseException):
                report.failed_servers[server_id] = str(chunk)
                report.missing_keys.extend(by_server[server_id])
                continue
            merged.update(chunk)
            # Preserve the slice's key set even if the server omitted entries.
            for key in by_server[server_id]:
                merged.setdefault(key, None)
        if not partial:
            return merged
        report.fetched = len(merged)
        report.retries = int(self.counters["retries"].value - retries_before)
        report.hedges = int(self.counters["hedges_sent"].value - hedges_before)
        if not report.complete:
            self.counters["partial_multigets"].inc()
        return merged, report

    # ------------------------------------------------------------------
    # Probing (Prequal-style freshness for probe-based policies)
    # ------------------------------------------------------------------
    def _maybe_probe(self, keys: Sequence[str]) -> None:
        """Fire up to ``probes_per_request`` control-plane probes.

        Targets are drawn without replacement from the union of the
        touched keys' replica sets, so the pool stays fresh for exactly
        the servers this client might route to next.  Probes are
        fire-and-forget background tasks: their replies refresh the pool
        through the read loop's feedback funnel, never blocking the
        request that triggered them.
        """
        if not self._want_probes:
            return
        candidates: Set[int] = set()
        for key in keys:
            candidates.update(
                self.ring.preference_list(key, self.replication_factor)
            )
        pool = sorted(candidates)
        n = min(self.probes_per_request, len(pool))
        if n == 0:
            return
        picks = self._probe_rng.choice(len(pool), size=n, replace=False)
        for idx in picks:
            task = asyncio.create_task(self._probe(pool[int(idx)]))
            self._probe_tasks.add(task)
            task.add_done_callback(self._probe_tasks.discard)

    async def _probe(self, server_id: int) -> None:
        """One probe round-trip (bypasses retry/hedge/breaker machinery)."""
        self.counters["probes_sent"].inc()
        # The outbound leg; the reply leg is accounted by the read loop.
        self.selection_policy.record_control_message(
            "probe", payload_bytes=PROBE_WIRE_BYTES
        )
        try:
            await self._attempt(server_id, "probe", {}, self.probe_timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            self.counters["probes_failed"].inc()
        else:
            self.counters["probes_ok"].inc()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: retries, timeouts, reconnects, hedges, ..."""
        snapshot: Dict[str, Any] = {
            name: int(c.value) for name, c in self.counters.items()
        }
        snapshot["breakers_open"] = sum(
            1 for b in self._breakers.values() if b.state == CircuitBreaker.OPEN
        )
        snapshot["selection"] = self.selection_policy.stats()
        return snapshot

    async def server_stats(self, server_id: int) -> Dict:
        """Scrape one server's observability surface over the wire.

        Returns the server's ``stats()`` dict (flat counters plus its
        registry snapshot under ``metrics``) via the ``stats`` protocol
        message.
        """
        reply = await self._call(server_id, "stats", {})
        if not reply.fields.get("ok"):
            raise ProtocolError(f"stats failed: {reply.fields.get('error')}")
        return reply.fields.get("stats", {})
