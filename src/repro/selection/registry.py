"""Name-based construction of selection policies.

The registry is the one place that knows each policy's constructor
dependencies, expressed as :class:`PolicyNeeds` so callers (the sim's
cluster assembly, the runtime client, configs) can provision an rng
stream or estimates view only when the chosen policy wants one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigError
from repro.selection.base import SelectionPolicy
from repro.selection.dodoor import DodoorPolicy
from repro.selection.prequal import PrequalPolicy
from repro.selection.scored import C3Policy, TarsPolicy
from repro.selection.static import (
    LeastWorkPolicy,
    PowerOfDPolicy,
    PrimaryPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)


@dataclass(frozen=True)
class PolicyNeeds:
    """Constructor dependencies of one policy name.

    ``load_reports`` flags policies fed by periodic asynchronous server
    load reports, so callers can provision the reporter (the sim's
    broadcaster, the runtime's ``load_report_interval``) before the
    policy instance exists.
    """

    rng: bool = False
    estimates: bool = False
    load_reports: bool = False


_SPECS: Dict[str, PolicyNeeds] = {
    "primary": PolicyNeeds(),
    "random": PolicyNeeds(rng=True),
    "round_robin": PolicyNeeds(),
    "least_estimated_work": PolicyNeeds(estimates=True),
    "power_of_d": PolicyNeeds(rng=True),
    "c3": PolicyNeeds(estimates=True),
    "tars": PolicyNeeds(estimates=True),
    "prequal": PolicyNeeds(),
    "dodoor": PolicyNeeds(rng=True, load_reports=True),
}

#: Every registered policy name, in registration order.
SELECTION_POLICY_NAMES = tuple(_SPECS)


def selection_policy_needs(name: str) -> PolicyNeeds:
    """Dependencies of policy ``name`` (ConfigError when unknown)."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(SELECTION_POLICY_NAMES)
        raise ConfigError(
            f"unknown selection policy {name!r}; one of {known}"
        ) from None


def create_selection_policy(
    name: str,
    rng=None,
    estimates=None,
    work_estimate=None,
    **params: Any,
) -> SelectionPolicy:
    """Build the policy registered under ``name``.

    ``rng`` / ``estimates`` are provisioned by the caller when
    :func:`selection_policy_needs` says so; ``work_estimate`` is the
    legacy single-argument callback accepted by ``least_estimated_work``
    for backward compatibility.  Remaining ``params`` are forwarded to
    the policy constructor (each policy documents its knobs).
    """
    needs = selection_policy_needs(name)
    if needs.rng and rng is None:
        raise ConfigError(f"selection={name!r} requires an rng")
    if name == "primary":
        return PrimaryPolicy(**params)
    if name == "random":
        return RandomPolicy(rng, **params)
    if name == "round_robin":
        return RoundRobinPolicy(**params)
    if name == "least_estimated_work":
        work_fn = None
        if work_estimate is not None:
            # Legacy callback took only the server id.
            def work_fn(sid: int, now: float, _f=work_estimate) -> float:
                return _f(sid)

        return LeastWorkPolicy(work_fn=work_fn, estimates=estimates, **params)
    if name == "power_of_d":
        return PowerOfDPolicy(rng, estimates=estimates, **params)
    if name == "c3":
        return C3Policy(estimates, **params)
    if name == "tars":
        return TarsPolicy(estimates, **params)
    if name == "prequal":
        return PrequalPolicy(**params)
    if name == "dodoor":
        return DodoorPolicy(rng, **params)
    raise ConfigError(f"unregistered selection policy {name!r}")  # pragma: no cover
