"""Prequal-style probe-pool selection: hot/cold lexicographic picking.

Prequal (Wydrowski et al., NSDI'24) selects replicas from a small pool of
recent *probes*, each reporting a server's requests-in-flight (RIF) and a
latency signal.  Servers whose RIF sits above a configurable quantile of
the pool are *hot*; the pick is lexicographic:

* some candidate is cold  -> the cold candidate with the lowest latency;
* every candidate is hot  -> the candidate with the lowest RIF.

This "hot by RIF, cold by latency" split is what makes Prequal robust in
degraded/heterogeneous clusters: latency alone chases fast-but-loaded
servers, RIF alone ignores slow service.

Probes here are fed through :meth:`PrequalPolicy.observe_feedback` — in
the simulator every piggybacked/periodic feedback snapshot doubles as a
probe; in the runtime the client additionally issues control-plane
``probe`` messages (see ``repro.runtime.client``) whose replies arrive
through the same funnel, keeping the pool fresh for servers the client is
not currently reading from.  Probes expire after ``max_age`` seconds and
the pool is bounded to ``pool_size`` entries (oldest evicted first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Sequence

from collections import deque

from repro.errors import ConfigError
from repro.selection.base import SelectionPolicy


@dataclass(frozen=True)
class Probe:
    """One load sample: a server's RIF + latency signal at time ``t``."""

    server_id: int
    rif: float
    latency: float
    t: float


class PrequalPolicy(SelectionPolicy):
    """Probe-pool selection with hot/cold lexicographic picking.

    Parameters
    ----------
    pool_size:
        Maximum probes kept (default 16, as in the paper's client pool).
    max_age:
        Probes older than this many seconds are expired before every
        decision (default 1.0 s).
    hot_quantile:
        Pool-RIF quantile above which a server counts as hot
        (default 0.75).
    cold_start_latency:
        Latency charged per local in-flight op for candidates with no
        probe yet, so concurrent cold-start picks spread instead of
        piling onto the lowest server id (default 1 ms).
    """

    name = "prequal"
    wants_inflight = True
    wants_feedback = True
    wants_probes = True

    def __init__(
        self,
        pool_size: int = 16,
        max_age: float = 1.0,
        hot_quantile: float = 0.75,
        cold_start_latency: float = 1e-3,
    ):
        super().__init__()
        if pool_size < 1:
            raise ConfigError("pool_size must be >= 1")
        if max_age <= 0:
            raise ConfigError("max_age must be positive")
        if not 0.0 < hot_quantile <= 1.0:
            raise ConfigError("hot_quantile must be in (0, 1]")
        self.pool_size = pool_size
        self.max_age = max_age
        self.hot_quantile = hot_quantile
        self.cold_start_latency = cold_start_latency
        self._pool: Deque[Probe] = deque()
        self.probes_added = 0
        self.probes_expired = 0

    # ------------------------------------------------------------------
    # Pool maintenance
    # ------------------------------------------------------------------
    def add_probe(
        self, server_id: int, rif: float, latency: float, now: float
    ) -> None:
        """Fold one probe result into the pool (oldest evicted at capacity)."""
        self._pool.append(Probe(server_id, float(rif), float(latency), now))
        self.probes_added += 1
        while len(self._pool) > self.pool_size:
            self._pool.popleft()

    def observe_feedback(self, feedback, now: float = 0.0) -> None:
        """Every feedback snapshot doubles as a probe.

        RIF is the reported queue length; the latency signal is the
        reported expected wait (``queued_work`` is already in wall
        seconds) — both halves of the system feed the pool through this
        one method, so the policy behaves identically in sim and runtime.
        """
        self.add_probe(
            feedback.server_id, feedback.queue_length, feedback.queued_work, now
        )

    def _expire(self, now: float) -> None:
        horizon = now - self.max_age
        while self._pool and self._pool[0].t < horizon:
            self._pool.popleft()
            self.probes_expired += 1

    @property
    def pool(self) -> Sequence[Probe]:
        """The current probe pool, oldest first (read-only view)."""
        return tuple(self._pool)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _latest_per_server(self) -> Dict[int, Probe]:
        latest: Dict[int, Probe] = {}
        for probe in self._pool:  # oldest -> newest, so later wins
            latest[probe.server_id] = probe
        return latest

    def _rif_threshold(self) -> Optional[float]:
        rifs = sorted(probe.rif for probe in self._pool)
        if not rifs:
            return None
        # Nearest-rank quantile over the pool's RIF distribution.
        rank = max(0, math.ceil(self.hot_quantile * len(rifs)) - 1)
        return rifs[rank]

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        self._expire(now)
        latest = self._latest_per_server()
        # Candidates with no probe are treated as cold: an unprobed
        # server is worth exploring, charged only for our own in-flight.
        entries = []
        for sid in candidates:
            probe = latest.get(sid)
            if probe is None:
                rif = float(self.inflight_of(sid))
                latency = self.cold_start_latency * self.inflight_of(sid)
                entries.append((sid, rif, latency, True))
            else:
                entries.append((sid, probe.rif, probe.latency, False))
        threshold = self._rif_threshold()
        if threshold is None:
            cold = entries
        else:
            cold = [e for e in entries if e[3] or e[1] <= threshold]
        if cold:
            # Cold pick: lowest latency signal wins.
            sid, _, _, _ = min(cold, key=lambda e: (e[2], e[0]))
            return sid
        # Everything is hot: lowest RIF wins.
        sid, _, _, _ = min(entries, key=lambda e: (e[1], e[0]))
        return sid

    # ------------------------------------------------------------------
    def stats(self):
        """Pick summary plus probe-pool health counters."""
        base = super().stats()
        base.update(
            {
                "pool_size": len(self._pool),
                "probes_added": self.probes_added,
                "probes_expired": self.probes_expired,
            }
        )
        return base
