"""Estimate-scored selection policies: C3-style and Tars-style.

Both score every candidate replica from the client's
:class:`~repro.core.estimator.ServerEstimates` — the same per-server
EWMAs the DAS tagger consumes — so they add *zero* extra signalling:
the feedback DAS already collects doubles as the replica-selection
input, which is the whole point of the X1/X3 extension experiments.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.core.estimator import EwmaEstimator, ServerEstimates
from repro.errors import ConfigError
from repro.selection.base import SelectionPolicy

#: Floor for rate estimates so a near-dead server cannot divide by zero.
MIN_RATE = 1e-6


class C3Policy(SelectionPolicy):
    """C3-style replica ranking with a cubic queue penalty.

    Following Suresh et al. (NSDI'15), each replica is scored
    ``latency + (1 + inflight + queue)^3 * step`` where ``latency`` is a
    client-side EWMA of observed response times, ``queue`` is the
    server-reported queue length, and ``step`` is the estimated per-slot
    wait.  Cubing the queue term makes a long queue prohibitively
    expensive long before it would dominate a linear score, which is what
    prevents client herds from piling onto one briefly-idle server.

    Parameters
    ----------
    estimates:
        The client's per-server feedback view.
    alpha_latency:
        EWMA weight for observed response latencies (default 0.3).
    concurrency_weight:
        How many queue slots one of *this client's* in-flight operations
        counts for (default 1.0).
    """

    name = "c3"
    wants_inflight = True
    wants_feedback = True

    def __init__(
        self,
        estimates: ServerEstimates,
        alpha_latency: float = 0.3,
        concurrency_weight: float = 1.0,
    ):
        super().__init__()
        if estimates is None:
            raise ConfigError("selection='c3' requires estimates (feedback)")
        if concurrency_weight < 0:
            raise ConfigError("concurrency_weight must be >= 0")
        self._estimates = estimates
        self._alpha_latency = alpha_latency
        self._concurrency_weight = concurrency_weight
        self._latency: Dict[int, EwmaEstimator] = {}

    def on_response(self, server_id: int, now: float = 0.0, latency: float = 0.0) -> None:
        super().on_response(server_id, now, latency)
        ewma = self._latency.get(server_id)
        if ewma is None:
            ewma = self._latency[server_id] = EwmaEstimator(self._alpha_latency)
        if latency >= 0:
            ewma.update(latency)

    def _score(self, server_id: int, now: float) -> float:
        est = self._estimates
        queue = est.queue_length(server_id)
        wait = est.queued_work(server_id, now)
        # Per-slot wait: how long one queued op is expected to hold the
        # server.  Derived from the feedback itself when a queue exists.
        if queue > 0 and wait > 0:
            step = wait / queue
        else:
            step = wait if wait > 0 else MIN_RATE
        step /= max(est.rate(server_id), MIN_RATE)
        ewma = self._latency.get(server_id)
        latency = ewma.value_or(0.0) if ewma is not None else 0.0
        depth = 1.0 + self._concurrency_weight * self.inflight_of(server_id) + queue
        return latency + depth**3 * step

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        return min(candidates, key=lambda sid: (self._score(sid, now), sid))


class TarsPolicy(SelectionPolicy):
    """Tars-style timeliness-aware scoring on the DAS feedback estimates.

    Tars (Jiang et al.) weights congestion information by its *freshness*:
    a stale observation of a busy server should neither keep repelling
    traffic forever nor be trusted like a live reading.  Each candidate's
    expected wait is blended toward the candidate-set mean with weight
    ``1 - exp(-staleness / tau)``, then divided by the server's estimated
    service rate so a degraded server stays expensive even when its queue
    estimate has drained:

    ``score = (w * wait + (1 - w) * mean_wait + service_floor) / rate``

    Parameters
    ----------
    estimates:
        The client's per-server feedback view (shared with the DAS tagger).
    tau:
        Staleness horizon in seconds: information older than a few tau is
        effectively discounted to the population mean (default 50 ms).
    service_floor:
        The new operation's own reference demand guess in seconds; keeps
        the rate division meaningful when every queue is empty
        (default 200 microseconds).
    """

    name = "tars"
    wants_inflight = True
    wants_feedback = True

    def __init__(
        self,
        estimates: ServerEstimates,
        tau: float = 0.05,
        service_floor: float = 200e-6,
    ):
        super().__init__()
        if estimates is None:
            raise ConfigError("selection='tars' requires estimates (feedback)")
        if tau <= 0:
            raise ConfigError("tau must be positive")
        if service_floor <= 0:
            raise ConfigError("service_floor must be positive")
        self._estimates = estimates
        self.tau = tau
        self.service_floor = service_floor

    def _freshness(self, server_id: int, now: float) -> float:
        staleness = self._estimates.staleness(server_id, now)
        if staleness == float("inf"):
            return 0.0  # never heard from: trust the population mean
        return math.exp(-max(staleness, 0.0) / self.tau)

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        est = self._estimates
        waits = {sid: est.queued_work(sid, now) for sid in candidates}
        mean_wait = sum(waits.values()) / len(waits)

        def score(sid: int) -> float:
            w = self._freshness(sid, now)
            blended = w * waits[sid] + (1.0 - w) * mean_wait
            return (blended + self.service_floor) / max(est.rate(sid), MIN_RATE)

        return min(candidates, key=lambda sid: (score(sid), sid))
