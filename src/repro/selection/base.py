"""The replica-selection policy interface shared by sim and runtime.

A :class:`SelectionPolicy` answers one question — *which replica serves
this GET?* — from whatever signals it declares an interest in:

* ``wants_inflight`` — the caller reports every dispatch/response via
  :meth:`on_dispatch` / :meth:`on_response`, giving the policy a local
  requests-in-flight view and per-server latency samples;
* ``wants_feedback`` — the caller forwards every
  :class:`~repro.kvstore.items.Feedback` snapshot it receives via
  :meth:`observe_feedback` (piggybacked replies, periodic broadcasts, and
  probe replies all arrive through this one funnel);
* ``wants_probes`` — the runtime client should additionally issue
  control-plane ``probe`` messages to keep the policy's view fresh for
  servers it is not currently reading from (the simulator's piggybacked
  feedback makes explicit probes redundant there).

Callers gate the hooks on these flags so the paper-default ``primary``
policy costs nothing on the hot path.  Time is always passed in (the
simulator's ``env.now`` or the runtime's ``time.monotonic()``); policies
never read a clock themselves, which keeps cells deterministic under the
parallel experiment engine.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Dict, Sequence

#: The control-plane message kinds the accounting recognises, in the
#: order they appear in stats output.  ``probe`` is a request/response
#: round-trip the client initiated; ``report`` is an unsolicited periodic
#: broadcast from a server; ``feedback`` is a snapshot piggybacked on a
#: data-path reply (marginal wire cost, but counted so the overhead axis
#: is complete).
CONTROL_MESSAGE_KINDS = ("probe", "report", "feedback")

#: Nominal wire size of one feedback/report snapshot (four 8-byte fields
#: plus a server id) and of one probe request.  Both halves use the same
#: nominal sizes so sim and runtime byte accounting are comparable.
FEEDBACK_WIRE_BYTES = 40
PROBE_WIRE_BYTES = 8


class SelectionPolicy(abc.ABC):
    """Chooses the replica that serves a GET, from client-local signals.

    Subclasses implement :meth:`_choose`; the public :meth:`select`
    wrapper handles the single-candidate short-circuit and pick counting.
    All tie-breaks are ``(score, server_id)`` so selection is fully
    deterministic given the same observation sequence.
    """

    #: Registry name (set by each concrete policy).
    name: ClassVar[str] = "?"
    #: True when on_dispatch/on_response carry signal for this policy.
    wants_inflight: ClassVar[bool] = False
    #: True when observe_feedback carries signal for this policy.
    wants_feedback: ClassVar[bool] = False
    #: True when the runtime should issue control-plane probes for it.
    wants_probes: ClassVar[bool] = False
    #: True when the cluster should run periodic server load reports
    #: (asynchronous broadcast feeding observe_feedback) for it.
    wants_load_reports: ClassVar[bool] = False

    def __init__(self):
        #: server_id -> reads routed there by this policy.
        self.picks: Dict[int, int] = {}
        #: server_id -> operations dispatched but not yet answered.
        self.inflight: Dict[int, int] = {}
        self.decisions = 0
        #: kind -> control-plane messages attributed to keeping this
        #: policy's view fresh (see CONTROL_MESSAGE_KINDS).
        self.control_messages: Dict[str, int] = dict.fromkeys(
            CONTROL_MESSAGE_KINDS, 0
        )
        #: kind -> payload bytes carried by those messages.
        self.control_bytes: Dict[str, int] = dict.fromkeys(
            CONTROL_MESSAGE_KINDS, 0
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, key: str, candidates: Sequence[int], now: float = 0.0) -> int:
        """Pick the replica of ``key`` to read from, out of ``candidates``."""
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            chosen = self._choose(key, candidates, now)
        self.decisions += 1
        self.picks[chosen] = self.picks.get(chosen, 0) + 1
        return chosen

    @abc.abstractmethod
    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        """Policy-specific choice among >= 2 candidates."""

    # ------------------------------------------------------------------
    # Signal hooks (no-ops unless the policy wants them)
    # ------------------------------------------------------------------
    def on_dispatch(self, server_id: int, now: float = 0.0) -> None:
        """An operation was just sent to ``server_id``."""
        self.inflight[server_id] = self.inflight.get(server_id, 0) + 1

    def on_response(
        self, server_id: int, now: float = 0.0, latency: float = 0.0
    ) -> None:
        """A response from ``server_id`` arrived after ``latency`` seconds."""
        remaining = self.inflight.get(server_id, 0)
        if remaining > 0:
            self.inflight[server_id] = remaining - 1

    def observe_feedback(self, feedback, now: float = 0.0) -> None:
        """A server feedback snapshot arrived (reply, broadcast, or probe)."""

    # ------------------------------------------------------------------
    # Control-plane accounting
    # ------------------------------------------------------------------
    def record_control_message(
        self, kind: str, messages: int = 1, payload_bytes: int = 0
    ) -> None:
        """Attribute ``messages`` control-plane messages of ``kind``.

        Callers (the sim client, the runtime client) record at the point
        a message crosses the wire on the policy's behalf: a probe
        round-trip is two messages, a broadcast report is one per
        recipient, a piggybacked snapshot is zero extra messages but its
        payload bytes still count.
        """
        if kind not in self.control_messages:
            raise ValueError(
                f"unknown control message kind {kind!r}; "
                f"one of {CONTROL_MESSAGE_KINDS}"
            )
        self.control_messages[kind] += messages
        self.control_bytes[kind] += payload_bytes

    def control_messages_total(self) -> int:
        """All control-plane messages recorded, across kinds."""
        return sum(self.control_messages.values())

    # ------------------------------------------------------------------
    def inflight_of(self, server_id: int) -> int:
        """Local requests-in-flight count for ``server_id``."""
        return self.inflight.get(server_id, 0)

    def stats(self) -> Dict[str, Any]:
        """JSON-able decision/pick summary for ``stats()`` surfaces."""
        total = self.control_messages_total()
        return {
            "policy": self.name,
            "decisions": self.decisions,
            "picks": dict(sorted(self.picks.items())),
            "inflight": {s: n for s, n in sorted(self.inflight.items()) if n},
            "control_plane": {
                "messages_sent": dict(self.control_messages),
                "bytes_sent": dict(self.control_bytes),
                "messages_total": total,
                "messages_per_decision": (
                    total / self.decisions if self.decisions else 0.0
                ),
            },
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(decisions={self.decisions})"
