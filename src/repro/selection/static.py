"""Signal-free selection policies: primary, random, round-robin.

These are the policies ported from the old string dispatch in
``repro.kvstore.replication`` — they consume no server state, so they
serve as the blind baselines the adaptive policies are measured against
(X1/X3) and as the zero-overhead defaults.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ConfigError
from repro.selection.base import SelectionPolicy
from repro.sim.rand import BatchedStream, as_batched


class PrimaryPolicy(SelectionPolicy):
    """Always read the first replica — the paper's evaluation setting."""

    name = "primary"

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        return candidates[0]


class RandomPolicy(SelectionPolicy):
    """Uniform random replica (requires an rng for reproducibility)."""

    name = "random"

    def __init__(self, rng):
        super().__init__()
        if rng is None:
            raise ConfigError("selection='random' requires an rng")
        self._rng: BatchedStream = as_batched(rng)

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        return candidates[self._rng.integers(0, len(candidates))]


class RoundRobinPolicy(SelectionPolicy):
    """Rotate over each key's replica set, one counter per key."""

    name = "round_robin"

    def __init__(self):
        super().__init__()
        self._counters: Dict[str, int] = {}

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        counter = self._counters.get(key, 0)
        self._counters[key] = counter + 1
        return candidates[counter % len(candidates)]


class LeastWorkPolicy(SelectionPolicy):
    """Least estimated queued work (the original feedback-driven policy).

    ``work_fn(server_id, now)`` returns the client's current queued-work
    estimate in seconds; ties break toward the lower server id.  Rate and
    staleness are deliberately ignored — :class:`~repro.selection.scored
    .TarsPolicy` is the refinement that accounts for both.
    """

    name = "least_estimated_work"
    wants_feedback = True

    def __init__(self, work_fn=None, estimates=None):
        super().__init__()
        if work_fn is None:
            if estimates is None:
                raise ConfigError(
                    "selection='least_estimated_work' requires a work_estimate "
                    "callback or estimates"
                )
            work_fn = estimates.queued_work
        self._work_fn = work_fn

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        return min(candidates, key=lambda sid: (self._work_fn(sid, now), sid))


class PowerOfDPolicy(SelectionPolicy):
    """Power-of-d-choices: sample ``d`` replicas, take the least loaded.

    The classic herd-avoidance compromise: sampling decorrelates clients
    (they do not all chase the same momentarily-idle server) while d >= 2
    guarantees the strictly-worst sampled replica is never picked.  Load
    is the estimated queued work when estimates are available, else the
    local requests-in-flight count.
    """

    name = "power_of_d"
    wants_inflight = True
    wants_feedback = True

    def __init__(self, rng, estimates=None, d: int = 2):
        super().__init__()
        if rng is None:
            raise ConfigError("selection='power_of_d' requires an rng")
        if d < 2:
            raise ConfigError(f"power_of_d needs d >= 2, got {d}")
        self._rng: BatchedStream = as_batched(rng)
        self._estimates = estimates
        self.d = d

    def _load(self, server_id: int, now: float) -> float:
        if self._estimates is not None:
            return self._estimates.queued_work(server_id, now)
        return float(self.inflight_of(server_id))

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        n = len(candidates)
        if self.d >= n:
            sampled = candidates
        else:
            # Partial Fisher-Yates over an index list: d distinct draws.
            idx = list(range(n))
            for i in range(self.d):
                j = i + self._rng.integers(0, n - i)
                idx[i], idx[j] = idx[j], idx[i]
            sampled = [candidates[i] for i in idx[: self.d]]
        return min(sampled, key=lambda sid: (self._load(sid, now), sid))
