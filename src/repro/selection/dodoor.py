"""Dodoor-style selection: d-choices over a cached, bounded-stale load view.

At fleet scale (hundreds of servers) the per-request signal paths get
expensive: Prequal pays probe round-trips on the data path, and the
piggyback/C3/Tars style needs a *recent reply from that very server* to
have a fresh view.  Dodoor (PAPERS.md) inverts the flow — servers push
periodic asynchronous **load reports**, every client caches the latest
report per server, and selection is randomized d-choices ranked on the
cached load.  The control-plane cost is then O(servers / interval) for
the whole client, independent of the request rate, instead of
O(probes x requests).

The cache is *bounded stale*: entries older than ``max_staleness`` are
ignored (a crashed or partitioned server's last report must not pin
traffic forever).  When no sampled candidate has a fresh entry the policy
degrades to uniform random over the sample — exactly the d=1..d herd
behaviour of :class:`~repro.selection.static.RandomPolicy`, never a
crash, never a deterministic pin.

The refresh interval itself is a *cluster/server* knob (the reporter
lives clock-side: ``ClusterConfig.load_report_interval`` in the sim,
``KVServer(load_report_interval=...)`` in the runtime); the policy only
needs the staleness bound it tolerates.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.errors import ConfigError
from repro.selection.base import SelectionPolicy
from repro.sim.rand import BatchedStream, as_batched

#: Default staleness bound, sized as a small multiple of the default
#: report interval (see ``FeedbackConfig.interval``): a cache entry
#: survives a couple of missed reports, then expires.
DEFAULT_MAX_STALENESS = 25e-3


class DodoorPolicy(SelectionPolicy):
    """Randomized d-choices over a load cache fed by periodic reports.

    Knobs:

    * ``d`` — candidates sampled per decision (default 2);
    * ``max_staleness`` — seconds after which a cached load report is
      ignored (default 25 ms ~= a few missed reports at the default
      5 ms interval).

    The cache is fed exclusively through :meth:`observe_feedback` — the
    same funnel piggyback replies and probe answers use — so the policy
    works (with degraded freshness) even without a periodic reporter.
    Load is the reported queued work in seconds plus the *local*
    requests-in-flight count scaled tiny, which breaks herd ties between
    servers that reported identical queue depth.
    """

    name = "dodoor"
    wants_inflight = True
    wants_feedback = True
    wants_load_reports = True

    def __init__(
        self,
        rng,
        d: int = 2,
        max_staleness: float = DEFAULT_MAX_STALENESS,
    ):
        super().__init__()
        if rng is None:
            raise ConfigError("selection='dodoor' requires an rng")
        if d < 2:
            raise ConfigError(f"dodoor needs d >= 2, got {d}")
        if max_staleness <= 0:
            raise ConfigError(
                f"dodoor needs max_staleness > 0, got {max_staleness}"
            )
        self._rng: BatchedStream = as_batched(rng)
        self.d = d
        self.max_staleness = max_staleness
        #: server_id -> (reported queued work seconds, report timestamp).
        self._cache: Dict[int, Tuple[float, float]] = {}
        self.reports_cached = 0
        self.expired_lookups = 0
        self.blind_decisions = 0

    # ------------------------------------------------------------------
    def observe_feedback(self, feedback, now: float = 0.0) -> None:
        """Cache the latest load report (or piggybacked snapshot)."""
        self._cache[feedback.server_id] = (feedback.queued_work, now)
        self.reports_cached += 1

    def cached_load(self, server_id: int, now: float):
        """The fresh cached load for ``server_id``, or None when stale."""
        entry = self._cache.get(server_id)
        if entry is None:
            return None
        load, stamp = entry
        if now - stamp > self.max_staleness:
            self.expired_lookups += 1
            return None
        return load

    # ------------------------------------------------------------------
    def _sample(self, candidates: Sequence[int]) -> Sequence[int]:
        n = len(candidates)
        if self.d >= n:
            return candidates
        # Partial Fisher-Yates over an index list: d distinct draws
        # (same idiom as PowerOfDPolicy, same rng stream discipline).
        idx = list(range(n))
        for i in range(self.d):
            j = i + self._rng.integers(0, n - i)
            idx[i], idx[j] = idx[j], idx[i]
        return [candidates[i] for i in idx[: self.d]]

    def _choose(self, key: str, candidates: Sequence[int], now: float) -> int:
        sampled = self._sample(candidates)
        best = None
        best_rank = None
        for sid in sampled:
            load = self.cached_load(sid, now)
            if load is None:
                continue
            # The in-flight nudge decorrelates clients between reports:
            # two servers that reported identical load diverge as soon as
            # this client has dispatched to one of them.
            rank = (load + 1e-6 * self.inflight_of(sid), sid)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = sid
        if best is not None:
            return best
        # Every sampled entry is missing or expired: degrade to uniform
        # random among the sample.  The Fisher-Yates order is already a
        # uniform draw, so the first sampled element is uniform over the
        # candidates — no low-server-id pinning.
        self.blind_decisions += 1
        return sampled[0]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Base stats plus cache freshness/degradation counters."""
        base = super().stats()
        base.update(
            {
                "d": self.d,
                "max_staleness": self.max_staleness,
                "cache_size": len(self._cache),
                "reports_cached": self.reports_cached,
                "expired_lookups": self.expired_lookups,
                "blind_decisions": self.blind_decisions,
            }
        )
        return base
