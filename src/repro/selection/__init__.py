"""Adaptive replica selection shared by the simulator and the runtime.

The paper's evaluation reads every key from its primary replica; this
package supplies the *selection* lever on top of DAS's scheduling lever:
a common :class:`~repro.selection.base.SelectionPolicy` interface with
blind baselines (primary / random / round-robin), sampled load balancing
(power-of-d-choices), estimate-scored ranking (C3-style cubic penalty,
Tars-style timeliness-aware scoring — both fed by the same
``Feedback``/``ServerEstimates`` stream DAS consumes), and Prequal-style
probe-pool selection with hot/cold lexicographic picking.

See ``docs/selection.md`` for each policy's knobs and the sim-vs-runtime
wiring.
"""

from repro.selection.base import SelectionPolicy
from repro.selection.prequal import PrequalPolicy, Probe
from repro.selection.registry import (
    PolicyNeeds,
    SELECTION_POLICY_NAMES,
    create_selection_policy,
    selection_policy_needs,
)
from repro.selection.scored import C3Policy, TarsPolicy
from repro.selection.static import (
    LeastWorkPolicy,
    PowerOfDPolicy,
    PrimaryPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)

__all__ = [
    "C3Policy",
    "LeastWorkPolicy",
    "PolicyNeeds",
    "PowerOfDPolicy",
    "PrequalPolicy",
    "PrimaryPolicy",
    "Probe",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SELECTION_POLICY_NAMES",
    "SelectionPolicy",
    "TarsPolicy",
    "create_selection_policy",
    "selection_policy_needs",
]
