"""Adaptive replica selection shared by the simulator and the runtime.

The paper's evaluation reads every key from its primary replica; this
package supplies the *selection* lever on top of DAS's scheduling lever:
a common :class:`~repro.selection.base.SelectionPolicy` interface with
blind baselines (primary / random / round-robin), sampled load balancing
(power-of-d-choices), estimate-scored ranking (C3-style cubic penalty,
Tars-style timeliness-aware scoring — both fed by the same
``Feedback``/``ServerEstimates`` stream DAS consumes), Prequal-style
probe-pool selection with hot/cold lexicographic picking, and
Dodoor-style d-choices over a bounded-stale load cache refreshed by
periodic asynchronous server reports (the fleet-scale policy — control
cost independent of the request rate).  Every policy accounts its
control-plane traffic (``messages_sent{kind=probe|report|feedback}``,
bytes) so overhead is a measured axis in X5.

See ``docs/selection.md`` for each policy's knobs and the sim-vs-runtime
wiring.
"""

from repro.selection.base import (
    CONTROL_MESSAGE_KINDS,
    FEEDBACK_WIRE_BYTES,
    PROBE_WIRE_BYTES,
    SelectionPolicy,
)
from repro.selection.dodoor import DodoorPolicy
from repro.selection.prequal import PrequalPolicy, Probe
from repro.selection.registry import (
    PolicyNeeds,
    SELECTION_POLICY_NAMES,
    create_selection_policy,
    selection_policy_needs,
)
from repro.selection.scored import C3Policy, TarsPolicy
from repro.selection.static import (
    LeastWorkPolicy,
    PowerOfDPolicy,
    PrimaryPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)

__all__ = [
    "C3Policy",
    "CONTROL_MESSAGE_KINDS",
    "DodoorPolicy",
    "FEEDBACK_WIRE_BYTES",
    "LeastWorkPolicy",
    "PolicyNeeds",
    "PROBE_WIRE_BYTES",
    "PowerOfDPolicy",
    "PrequalPolicy",
    "PrimaryPolicy",
    "Probe",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SELECTION_POLICY_NAMES",
    "SelectionPolicy",
    "TarsPolicy",
    "create_selection_policy",
    "selection_policy_needs",
]
