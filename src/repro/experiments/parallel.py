"""Parallel experiment engine: fan scenario cells out over worker processes.

The paper's evaluation is a grid of *independent* cells — every
``(x-axis point, scheduler)`` pair builds its own cluster from its own
config and seed, so cells share no state and can run on any core in any
order.  :func:`run_scenario_parallel` exploits that: it schedules the
grid on a :class:`concurrent.futures.ProcessPoolExecutor` and reassembles
the results into the same :class:`~repro.experiments.runner.ScenarioResult`
the sequential runner produces.

Guarantees (tested in ``tests/experiments/test_parallel.py``):

* **Determinism at any worker count.**  Each cell's randomness is fully
  determined by its own ``ClusterConfig.seed`` — never by execution
  order, completion order, or worker identity — so ``--workers 4``
  produces cell-for-cell identical summaries to the sequential runner.
  When per-point seed variation is requested (``reseed_points=True``,
  for replication studies), seeds are *derived from cell identity* in
  ``SeedSequence.spawn`` style (:func:`derive_seed`), which preserves the
  same guarantee.
* **Checkpoint/resume.**  With a ``checkpoint_dir``, every finished cell
  is written to its own JSON file keyed by grid coordinates and a config
  fingerprint; a rerun skips cells whose checkpoint exists and matches,
  so an interrupted sweep continues where it stopped (a changed scenario
  invalidates the stale cells automatically).
* **Observable progress.**  Engine counters/gauges live in a
  :class:`~repro.obs.registry.MetricsRegistry` (``engine_*``) and feed
  the per-cell progress/ETA line the CLI prints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.experiments.runner import CellResult, ScenarioResult, run_cell
from repro.experiments.scenarios import RunPoint, Scenario, SchedulerSpec
from repro.metrics.summary import SummaryStats
from repro.obs import MetricsRegistry

#: Version stamp of the checkpoint file format; bump on layout changes.
CHECKPOINT_FORMAT = 1


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
def derive_seed(root_seed: int, *key: int) -> int:
    """Derive a child seed from ``root_seed`` and an identity ``key``.

    ``SeedSequence.spawn``-style: the child is a deterministic function of
    ``(root, key)`` only, so two engines that agree on cell identity agree
    on the seed no matter which worker runs the cell or in what order.
    """
    seq = np.random.SeedSequence(int(root_seed), spawn_key=tuple(int(k) for k in key))
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)  # non-negative


# ----------------------------------------------------------------------
# Cell tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellTask:
    """One grid cell, addressed by its (point, scheduler) coordinates."""

    point_index: int
    scheduler_index: int
    point: RunPoint
    scheduler: SchedulerSpec

    @property
    def label(self) -> str:
        """Human-readable cell identity for progress lines."""
        return f"point={self.point.x!r} scheduler={self.scheduler.label}"


def cell_tasks(scenario: Scenario, reseed_points: bool = False) -> List[CellTask]:
    """Expand a scenario grid into independent cell tasks.

    With ``reseed_points`` every x-axis point gets a seed derived from its
    grid position (:func:`derive_seed`); schedulers at the same point keep
    sharing a seed so A/B comparisons stay paired by workload.
    """
    tasks: List[CellTask] = []
    for pi, point in enumerate(scenario.points):
        if reseed_points:
            config = dataclasses.replace(
                point.config, seed=derive_seed(point.config.seed, pi)
            )
            point = RunPoint(x=point.x, config=config, sim=point.sim)
        for si, scheduler in enumerate(scenario.schedulers):
            tasks.append(CellTask(pi, si, point, scheduler))
    return tasks


def _execute_cell(task: CellTask) -> Tuple[int, int, CellResult]:
    """Worker entry point: run one cell and ship the result back."""
    return task.point_index, task.scheduler_index, run_cell(task.point, task.scheduler)


# ----------------------------------------------------------------------
# Checkpoint serialization
# ----------------------------------------------------------------------
def cell_fingerprint(task: CellTask) -> str:
    """Config fingerprint deciding whether a checkpoint is still valid.

    Built from the dataclass reprs of the cell's cluster config, sim
    config, and scheduler spec — all deterministic — so editing a scenario
    invalidates exactly the cells the edit touched.
    """
    text = repr((task.point.config, task.point.sim, task.scheduler))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _safe_label(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", label)[:48]


def checkpoint_path(directory: Path, scenario: Scenario, task: CellTask) -> Path:
    """Checkpoint file for one cell: grid coordinates + readable label."""
    name = (
        f"p{task.point_index:03d}_s{task.scheduler_index:02d}"
        f"_{_safe_label(task.scheduler.label)}.json"
    )
    return Path(directory) / scenario.experiment_id / name


def cell_to_jsonable(cell: CellResult) -> Dict:
    """Project a :class:`CellResult` onto JSON-able types."""
    return {
        "x": cell.x if isinstance(cell.x, (int, float, str, bool)) else repr(cell.x),
        "scheduler": cell.scheduler,
        "summary": cell.summary.as_dict(),
        "mean_slowdown": cell.mean_slowdown,
        "p99_slowdown": cell.p99_slowdown,
        "utilization": cell.utilization,
        "requests": cell.requests,
        "wall_seconds": cell.wall_seconds,
        "metrics": cell.metrics,
        "traces": cell.traces,
        "prometheus": cell.prometheus,
    }


def cell_from_jsonable(data: Dict, x: object) -> CellResult:
    """Rebuild a :class:`CellResult` from :func:`cell_to_jsonable` output.

    ``x`` comes from the live scenario point (not the JSON) so checkpoint
    round-trips cannot drift the grid key's type.
    """
    s = data["summary"]
    summary = SummaryStats(
        count=int(s["count"]),
        mean=s["mean"],
        std=s["std"],
        p50=s["p50"],
        p90=s["p90"],
        p95=s["p95"],
        p99=s["p99"],
        p999=s["p999"],
        minimum=s["min"],
        maximum=s["max"],
    )
    return CellResult(
        x=x,
        scheduler=data["scheduler"],
        summary=summary,
        mean_slowdown=data["mean_slowdown"],
        p99_slowdown=data["p99_slowdown"],
        utilization=data["utilization"],
        requests=data["requests"],
        wall_seconds=data["wall_seconds"],
        metrics=data.get("metrics", {}),
        traces=data.get("traces", []),
        prometheus=data.get("prometheus", ""),
    )


def _write_checkpoint(
    path: Path, scenario: Scenario, task: CellTask, cell: CellResult
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "experiment_id": scenario.experiment_id,
        "point_index": task.point_index,
        "scheduler_index": task.scheduler_index,
        "fingerprint": cell_fingerprint(task),
        "cell": cell_to_jsonable(cell),
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, default=str), encoding="utf-8")
    os.replace(tmp, path)  # atomic: a crash never leaves a torn checkpoint


def _load_checkpoint(
    path: Path, scenario: Scenario, task: CellTask
) -> Optional[CellResult]:
    """Load a cell checkpoint; None when missing, stale, or unreadable."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if payload.get("format") != CHECKPOINT_FORMAT:
        return None
    if payload.get("fingerprint") != cell_fingerprint(task):
        return None
    try:
        return cell_from_jsonable(payload["cell"], task.point.x)
    except (KeyError, TypeError):
        return None


# ----------------------------------------------------------------------
# Progress / ETA
# ----------------------------------------------------------------------
class EngineProgress:
    """Live progress state exported through an obs registry.

    Registers ``engine_cells_total`` / ``engine_workers`` gauges, the
    ``engine_cells_completed_total`` / ``engine_cells_resumed_total``
    counters, and callback gauges ``engine_cells_per_second`` /
    ``engine_eta_seconds`` that read this object, so a registry snapshot
    taken mid-run reports the engine's own truth.
    """

    def __init__(self, registry: MetricsRegistry, total: int, workers: int):
        self.total = total
        self.completed = 0
        self.resumed = 0
        self._started = time.perf_counter()
        self._registry = registry
        registry.gauge("engine_cells_total", "Cells in the scenario grid").set(total)
        registry.gauge("engine_workers", "Worker processes in the pool").set(workers)
        self._completed_counter = registry.counter(
            "engine_cells_completed_total", "Cells completed (executed or resumed)"
        )
        self._resumed_counter = registry.counter(
            "engine_cells_resumed_total", "Cells skipped via checkpoint resume"
        )
        registry.gauge(
            "engine_cells_per_second",
            "Freshly executed cells per wall second",
            fn=lambda: self.cells_per_second,
        )
        registry.gauge(
            "engine_eta_seconds",
            "Estimated seconds until the grid completes",
            fn=lambda: self.eta_seconds,
        )

    @property
    def executed(self) -> int:
        """Cells actually run this session (resumed cells excluded)."""
        return self.completed - self.resumed

    @property
    def cells_per_second(self) -> float:
        """Freshly executed cells per wall second since engine start."""
        elapsed = time.perf_counter() - self._started
        return self.executed / elapsed if elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> float:
        """Projected seconds to finish the grid at the current rate."""
        rate = self.cells_per_second
        remaining = self.total - self.completed
        return remaining / rate if rate > 0 else float("inf")

    def mark(self, resumed: bool = False) -> None:
        """Record one completed cell (``resumed`` = loaded, not run)."""
        self.completed += 1
        self._completed_counter.inc()
        if resumed:
            self.resumed += 1
            self._resumed_counter.inc()

    def line(self, experiment_id: str, detail: str = "") -> str:
        """One status line: counts, throughput, and ETA."""
        parts = [f"[{experiment_id}] {self.completed}/{self.total} cells"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        rate = self.cells_per_second
        if rate > 0:
            parts.append(f"{rate:.2f} cells/s")
            eta = self.eta_seconds
            if eta != float("inf"):
                parts.append(f"ETA {eta:.0f}s")
        if detail:
            parts.append(detail)
        return " · ".join(parts)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def run_scenario_parallel(
    scenario: Scenario,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint_dir: Optional[Path] = None,
    resume: bool = True,
    reseed_points: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> ScenarioResult:
    """Run every cell of ``scenario`` across a process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` means ``os.cpu_count()``.  ``1`` runs the
        cells inline (no pool) — the reference sequential path.
    progress:
        Callback receiving one status/ETA line per completed cell.
    checkpoint_dir:
        When set, each finished cell is written to
        ``<dir>/<EID>/p###_s##_<label>.json`` and (with ``resume=True``)
        cells whose checkpoint exists and matches the scenario fingerprint
        are loaded instead of re-run.
    resume:
        Honor existing checkpoints (default).  ``False`` re-runs and
        overwrites every cell.
    reseed_points:
        Give each x-axis point an identity-derived seed (see
        :func:`cell_tasks`); default keeps the scenario's paired seeds.
    registry:
        Observability registry for the ``engine_*`` metrics; a private one
        is created when omitted.
    """
    if workers is not None and workers < 1:
        raise ConfigError("workers must be >= 1")
    workers = workers or os.cpu_count() or 1
    t0 = time.perf_counter()
    tasks = cell_tasks(scenario, reseed_points=reseed_points)
    registry = registry if registry is not None else MetricsRegistry()
    state = EngineProgress(registry, total=len(tasks), workers=workers)

    cells: Dict[Tuple[object, str], CellResult] = {}
    pending: List[CellTask] = []
    for task in tasks:
        cached = None
        if checkpoint_dir is not None and resume:
            cached = _load_checkpoint(
                checkpoint_path(checkpoint_dir, scenario, task), scenario, task
            )
        if cached is not None:
            cells[(task.point.x, task.scheduler.label)] = cached
            state.mark(resumed=True)
            if progress is not None:
                progress(state.line(scenario.experiment_id, f"resumed {task.label}"))
        else:
            pending.append(task)

    def finish(task: CellTask, cell: CellResult) -> None:
        """Record one finished cell: store, checkpoint, report progress."""
        cells[(task.point.x, task.scheduler.label)] = cell
        if checkpoint_dir is not None:
            _write_checkpoint(
                checkpoint_path(checkpoint_dir, scenario, task), scenario, task, cell
            )
        state.mark()
        if progress is not None:
            progress(state.line(scenario.experiment_id, f"done {task.label}"))

    if workers == 1 or len(pending) <= 1:
        for task in pending:
            finish(task, run_cell(task.point, task.scheduler))
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(_execute_cell, task): task for task in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    _, _, cell = future.result()
                    finish(futures[future], cell)

    # Reassemble in grid order: the result is independent of completion
    # order by construction (cells is keyed, not appended).
    ordered: Dict[Tuple[object, str], CellResult] = {}
    for point in scenario.points:
        for scheduler in scenario.schedulers:
            ordered[(point.x, scheduler.label)] = cells[(point.x, scheduler.label)]
    return ScenarioResult(
        scenario=scenario,
        cells=ordered,
        wall_seconds=time.perf_counter() - t0,
    )
