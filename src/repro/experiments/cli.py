"""Command-line entry point: run experiments and print paper-style tables.

Usage::

    repro-experiments E1 E5            # run selected experiments
    repro-experiments --all            # run the full suite
    repro-experiments E1 --scale 0.25  # quick pass at a quarter size
    repro-experiments E1 --workers 4   # fan cells out over 4 processes
    repro-experiments --all --workers 4 --checkpoint .cells   # resumable

Results are identical at any ``--workers`` count (see
``docs/benchmarking.md`` for the determinism guarantees); with
``--checkpoint DIR`` an interrupted run resumes from the finished cells.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.report import format_reduction_table, format_scenario_table
from repro.experiments.runner import run_scenario, write_observability_artifacts
from repro.experiments.scenarios import SCENARIOS, get_scenario, workload_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the DAS paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (known: {', '.join(sorted(SCENARIOS))})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--workload",
        action="append",
        default=[],
        metavar="NAME|PATH",
        help="run a scheduler comparison on a declarative workload spec: "
        "a registry name (see docs/workloads.md) or a .toml/.json spec "
        "file; repeatable",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="request-count scale factor (default 1.0; use <1 for quick passes)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell fan-out (default 1 = sequential; "
        "0 = one per CPU); results are identical at any count",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="DIR",
        help="write per-cell checkpoints into DIR and resume from them "
        "(finished cells are skipped on rerun)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="with --checkpoint: overwrite existing cell checkpoints "
        "instead of resuming from them",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also render an ASCII line chart of each experiment",
    )
    parser.add_argument(
        "--artifacts", type=Path, default=None, metavar="DIR",
        help="write per-experiment metrics/trace artifacts "
             "(<ID>.metrics.json / .prom) into DIR",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ids = sorted(SCENARIOS) if args.all else args.experiments
    if not ids and not args.workload:
        build_parser().print_help()
        return 2
    unknown = [i for i in ids if i not in SCENARIOS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda msg: print(f"  {msg}")
    # Experiment ids run their predefined grids; each --workload ref runs
    # the scheduler-comparison grid on that declarative spec.
    runs = [("experiment", i) for i in ids] + [
        ("workload", ref) for ref in args.workload
    ]
    for kind, ref in runs:
        if kind == "experiment":
            scenario = get_scenario(ref, scale=args.scale)
        else:
            scenario = workload_scenario(ref, scale=args.scale)
        experiment_id = scenario.experiment_id
        if args.workers == 1 and args.checkpoint is None:
            # The reference sequential path (kept as its own code path so
            # the parallel engine can be validated against it).
            seq_progress = (
                None if progress is None else (lambda msg: progress(f"running {msg}"))
            )
            result = run_scenario(scenario, progress=seq_progress)
        else:
            result = run_scenario_parallel(
                scenario,
                workers=args.workers or None,
                progress=progress,
                checkpoint_dir=args.checkpoint,
                resume=not args.no_resume,
            )
        if args.artifacts is not None:
            for path in write_observability_artifacts(result, args.artifacts):
                print(f"  wrote {path}")
        print()
        print(format_scenario_table(result))
        if experiment_id == "E7":
            print()
            print(format_reduction_table(result))
        if args.chart:
            from repro.metrics.plots import scenario_chart

            print()
            print(scenario_chart(result))
        print(f"  ({result.wall_seconds:.1f}s wall)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
