"""Render scenario results as the tables/series the paper reports."""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.runner import ScenarioResult

_MS_METRICS = {"mean", "p50", "p90", "p95", "p99", "p999", "std"}


def _fmt_value(metric: str, value: float) -> str:
    if metric in _MS_METRICS:
        return f"{value * 1e3:.3f}"
    return f"{value:.2f}"


def _metric_unit(metric: str) -> str:
    return "ms" if metric in _MS_METRICS else "x"


def format_scenario_table(
    result: ScenarioResult, metric: Optional[str] = None
) -> str:
    """One row per scheduler, one column per x point — the figure's series."""
    scenario = result.scenario
    metric = metric or scenario.metric
    unit = _metric_unit(metric)
    xs = result.xs()
    header = [f"{scenario.x_label}"] + [str(x) for x in xs]
    rows: List[List[str]] = [header]
    for sched in scenario.schedulers:
        series = result.series(sched.label, metric)
        rows.append([sched.label] + [_fmt_value(metric, v) for v in series])
    title = (
        f"{scenario.experiment_id}: {scenario.title} — {metric} ({unit})"
    )
    return title + "\n" + _render_grid(rows) + (
        f"\n  note: {scenario.notes}" if scenario.notes else ""
    )


def format_reduction_table(
    result: ScenarioResult,
    baseline_label: str = "FCFS",
    comparator_label: str = "Rein-SBF",
    treatment_label: str = "DAS",
) -> str:
    """The headline table: % reduction of DAS vs FCFS and vs the comparator."""
    scenario = result.scenario
    xs = result.xs()
    vs_base = result.reduction_vs(baseline_label, treatment_label)
    vs_comp = result.reduction_vs(comparator_label, treatment_label)
    rows = [
        [scenario.x_label] + [str(x) for x in xs],
        [f"vs {baseline_label} (%)"] + [f"{r * 100:.1f}" for r in vs_base],
        [f"vs {comparator_label} (%)"] + [f"{r * 100:.1f}" for r in vs_comp],
    ]
    title = f"{scenario.experiment_id}: mean-RCT reduction of {treatment_label}"
    return title + "\n" + _render_grid(rows)


def _render_grid(rows: List[List[str]]) -> str:
    """Fixed-width grid with a header separator."""
    widths = [
        max(len(row[col]) for row in rows if col < len(row))
        for col in range(max(len(r) for r in rows))
    ]
    lines = []
    for i, row in enumerate(rows):
        cells = [cell.rjust(widths[c]) for c, cell in enumerate(row)]
        lines.append("  " + "  ".join(cells))
        if i == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def scenario_markdown(result: ScenarioResult, metric: Optional[str] = None) -> str:
    """Markdown rendering for EXPERIMENTS.md."""
    scenario = result.scenario
    metric = metric or scenario.metric
    unit = _metric_unit(metric)
    xs = result.xs()
    lines = [
        f"| {scenario.x_label} | " + " | ".join(str(x) for x in xs) + " |",
        "|" + "---|" * (len(xs) + 1),
    ]
    for sched in scenario.schedulers:
        series = result.series(sched.label, metric)
        lines.append(
            f"| {sched.label} ({unit}) | "
            + " | ".join(_fmt_value(metric, v) for v in series)
            + " |"
        )
    return "\n".join(lines)
