"""Scenario definitions — one per reconstructed table/figure.

Every scenario is a grid of (x-axis point × scheduler).  The ``scale``
argument shrinks the per-cell request count so the same scenario serves
both the full experiment runs (scale=1) and the quick benchmark suite
(scale<1) without changing shape.

Conventions shared by all scenarios (the "evaluation setup" section):

* 16 servers, 4 front-end clients, 10k keys;
* baseline traffic pattern: geometric fan-out (mean 5), lognormal value
  sizes (median 1 KiB); load sweeps use uniform key popularity (so offered
  load is well-defined per server) while E6 studies Zipf/hotspot skew;
* offered load is calibrated analytically from the spec moments;
* every cell runs the *same* seed so scheduler comparisons see identical
  workloads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.core.feedback import FeedbackConfig, FeedbackMode
from repro.errors import ConfigError
from repro.faults import (
    Crash,
    FailureDetectorConfig,
    FaultPlan,
    HedgePolicy,
    PacketLoss,
    Partition,
    Recover,
    SlowNode,
)
from repro.kvstore.config import ClusterConfig, ServiceConfig, SimulationConfig
from repro.kvstore.service import DegradationEvent
from repro.workload.arrivals import MMPPArrivals, PoissonArrivals
from repro.workload.fanout import BimodalFanout, FixedFanout, GeometricFanout
from repro.workload.patterns import TRAFFIC_PATTERNS, TrafficPattern
from repro.workload.popularity import UniformPopularity
from repro.workload.requests import arrival_rate_for_load
from repro.workload.sizes import BimodalSize, ParetoSize

#: Cluster-wide defaults for all scenarios.
N_SERVERS = 16
N_CLIENTS = 4
KEYSPACE = 10_000
SEED = 42
BASE_REQUESTS = 12_000
BASE_DURATION = 4.0

BASELINE = TRAFFIC_PATTERNS["baseline"]

# Most scenarios use the baseline pattern with *uniform* key popularity so
# the per-server offered load equals the calibrated target: with Zipf skew
# the hottest key's owner exceeds 1.0 utilization long before the nominal
# load does, turning the sweep into an unstable-hotspot measurement.
# Skewed popularity is studied on its own axis in E6.
SWEEP = dataclasses.replace(BASELINE, popularity=UniformPopularity())
BIMODAL_SWEEP = dataclasses.replace(
    TRAFFIC_PATTERNS["bimodal"], popularity=UniformPopularity()
)


@dataclass(frozen=True)
class SchedulerSpec:
    """One scheduler column of a scenario grid."""

    label: str
    name: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RunPoint:
    """One x-axis point: a cluster config (scheduler unset) + sim config."""

    x: Any
    config: ClusterConfig
    sim: SimulationConfig


@dataclass(frozen=True)
class Scenario:
    """A full experiment grid plus reporting metadata."""

    experiment_id: str
    title: str
    x_label: str
    metric: str  # attribute of SummaryStats: "mean", "p99", ...
    points: Tuple[RunPoint, ...]
    schedulers: Tuple[SchedulerSpec, ...]
    notes: str = ""


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
FCFS = SchedulerSpec("FCFS", "fcfs")
SBF = SchedulerSpec("Rein-SBF", "sbf")
REIN_ML = SchedulerSpec("Rein-ML", "rein-ml")
SJF_REQ = SchedulerSpec("SJF-Req", "sjf-req")
DAS = SchedulerSpec("DAS", "das")

CORE_SCHEDULERS = (FCFS, SBF, DAS)
FULL_SCHEDULERS = (FCFS, SJF_REQ, REIN_ML, SBF, DAS)


def _mean_demand(service: ServiceConfig, pattern=SWEEP) -> float:
    return service.mean_demand(pattern.sizes.mean())


def _rate_for_load(
    load: float,
    service: ServiceConfig,
    pattern=SWEEP,
    n_servers: int = N_SERVERS,
    mean_speed: float = 1.0,
) -> float:
    return arrival_rate_for_load(
        load,
        pattern.fanout.mean(),
        _mean_demand(service, pattern),
        n_servers,
        mean_speed=mean_speed,
    )


def _base_config(
    load: float,
    pattern=SWEEP,
    n_servers: int = N_SERVERS,
    mean_speed: float = 1.0,
    **overrides: Any,
) -> ClusterConfig:
    service = overrides.pop("service", ServiceConfig())
    if "arrivals" in overrides:
        arrivals = overrides.pop("arrivals")
    else:
        arrivals = PoissonArrivals(
            rate=_rate_for_load(load, service, pattern, n_servers, mean_speed)
        )
    return ClusterConfig(
        n_servers=n_servers,
        n_clients=N_CLIENTS,
        seed=SEED,
        keyspace_size=overrides.pop("keyspace_size", KEYSPACE),
        arrivals=arrivals,
        fanout=pattern.fanout,
        sizes=pattern.sizes,
        popularity=pattern.popularity,
        service=service,
        **overrides,
    )


def _requests(scale: float) -> int:
    return max(500, int(BASE_REQUESTS * scale))


def _duration(scale: float) -> float:
    return max(0.5, BASE_DURATION * scale)


def _check_scale(scale: float) -> None:
    if scale <= 0:
        raise ConfigError("scale must be positive")


# ----------------------------------------------------------------------
# E1 / E2 — mean and tail RCT vs offered load
# ----------------------------------------------------------------------
def e1_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT vs offered load (the paper's headline figure)."""
    _check_scale(scale)
    loads = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    points = tuple(
        RunPoint(
            x=load,
            config=_base_config(load, pattern=SWEEP),
            sim=SimulationConfig(max_requests=_requests(scale)),
        )
        for load in loads
    )
    return Scenario(
        experiment_id="E1",
        title="Mean RCT vs offered load (baseline pattern)",
        x_label="load",
        metric="mean",
        points=points,
        schedulers=FULL_SCHEDULERS,
        notes="Paper claim: DAS cuts mean RCT 15~50%+ vs FCFS across loads.",
    )


def e2_scenario(scale: float = 1.0) -> Scenario:
    """P99 RCT vs offered load."""
    _check_scale(scale)
    loads = (0.5, 0.7, 0.9)
    points = tuple(
        RunPoint(
            x=load,
            config=_base_config(load, pattern=SWEEP),
            sim=SimulationConfig(max_requests=_requests(scale)),
        )
        for load in loads
    )
    return Scenario(
        experiment_id="E2",
        title="Tail (P99) RCT vs offered load",
        x_label="load",
        metric="p99",
        points=points,
        schedulers=CORE_SCHEDULERS,
        notes="Size-based policies trade tail for mean; DAS bounds starvation.",
    )


# ----------------------------------------------------------------------
# E3 — RCT vs fan-out
# ----------------------------------------------------------------------
def e3_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT vs *mean* multiget fan-out at fixed load 0.7.

    Fan-out is geometric around each mean so requests keep a size spread
    at every point — with a fixed fan-out all requests are identical in
    shape and size-based ordering has nothing to exploit (it even loses
    slightly to FCFS by adding cross-server jitter).
    """
    _check_scale(scale)
    fanout_means = (1.5, 2, 4, 8, 16)
    points = []
    for k in fanout_means:
        pattern = dataclasses.replace(
            SWEEP, fanout=GeometricFanout(mean_target=float(k), cap=64)
        )
        points.append(
            RunPoint(
                x=k,
                config=_base_config(0.7, pattern=pattern),
                sim=SimulationConfig(max_requests=_requests(scale)),
            )
        )
    return Scenario(
        experiment_id="E3",
        title="Mean RCT vs mean fan-out (load 0.7, geometric mixes)",
        x_label="mean_fanout",
        metric="mean",
        points=tuple(points),
        schedulers=CORE_SCHEDULERS,
        notes="Fan-out near 1 degenerates to independent M/G/1 queues.",
    )


# ----------------------------------------------------------------------
# E4 — time-varying load (adaptivity)
# ----------------------------------------------------------------------
def e4_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT under Markov-modulated load alternating 0.4 <-> 0.95.

    The x-axis is the spike dwell time: shorter dwell = faster variation.
    Uses the bimodal fan-out mix so the adaptive demotion has outliers to
    act on during spikes.
    """
    _check_scale(scale)
    pattern = dataclasses.replace(
        SWEEP, fanout=BimodalFanout(small=2, large=32, p_large=0.1)
    )
    service = ServiceConfig()
    r_low = _rate_for_load(0.4, service, pattern)
    r_high = _rate_for_load(0.95, service, pattern)
    dwells = (0.1, 0.3, 1.0)
    points = []
    for dwell in dwells:
        arrivals = MMPPArrivals(rates=(r_low, r_high), dwell_means=(dwell, dwell))
        points.append(
            RunPoint(
                x=dwell,
                config=_base_config(0.0, pattern=pattern, arrivals=arrivals),
                sim=SimulationConfig(duration=_duration(scale), warmup_fraction=0.1),
            )
        )
    return Scenario(
        experiment_id="E4",
        title="Time-varying load (MMPP 0.4<->0.95) vs dwell time",
        x_label="dwell_s",
        metric="mean",
        points=tuple(points),
        schedulers=(FCFS, SBF, DAS, SchedulerSpec("DAS-noadapt", "das", {"adaptive": False})),
        notes="Adaptivity axis: the spike length varies, the mean load is fixed.",
    )


# ----------------------------------------------------------------------
# E5 — server performance degradation
# ----------------------------------------------------------------------
def e5_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT with 0/1/2/4 of 16 servers degraded to 50% speed mid-run."""
    _check_scale(scale)
    duration = _duration(scale)
    onset = duration * 0.25
    counts = (0, 1, 2, 4)
    points = []
    for n_degraded in counts:
        degradations = {
            sid: (DegradationEvent(onset, 0.5),) for sid in range(n_degraded)
        }
        points.append(
            RunPoint(
                x=n_degraded,
                config=_base_config(0.55, degradations=degradations),
                sim=SimulationConfig(duration=duration, warmup_fraction=0.1),
            )
        )
    return Scenario(
        experiment_id="E5",
        title="Server performance degradation (50% speed from t=25%)",
        x_label="degraded_servers",
        metric="mean",
        points=tuple(points),
        schedulers=CORE_SCHEDULERS,
        notes="DAS's rate estimates deprioritize requests bound for slow servers.",
    )


# ----------------------------------------------------------------------
# E6 — traffic patterns
# ----------------------------------------------------------------------
def e6_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT across named traffic patterns at load 0.7."""
    _check_scale(scale)
    names = ("baseline", "uniform", "bimodal", "heavytail", "hotspot", "single-get")
    points = []
    for name in names:
        pattern = TRAFFIC_PATTERNS[name]
        points.append(
            RunPoint(
                x=name,
                config=_base_config(0.7, pattern=pattern),
                sim=SimulationConfig(max_requests=_requests(scale)),
            )
        )
    return Scenario(
        experiment_id="E6",
        title="Mean RCT across traffic patterns (load 0.7)",
        x_label="pattern",
        metric="mean",
        points=tuple(points),
        schedulers=CORE_SCHEDULERS,
        notes="The paper's 'different traffic patterns' axis.",
    )


# ----------------------------------------------------------------------
# E7 — headline reduction table
# ----------------------------------------------------------------------
def e7_scenario(scale: float = 1.0) -> Scenario:
    """Representative scenarios for the headline reduction-vs-FCFS table."""
    _check_scale(scale)
    points = []
    # Moderate and heavy load on the baseline pattern.
    for load in (0.5, 0.7, 0.9):
        points.append(
            RunPoint(
                x=f"baseline@{load}",
                config=_base_config(load),
                sim=SimulationConfig(max_requests=_requests(scale)),
            )
        )
    # Bimodal pattern at heavy load.
    bimodal = BIMODAL_SWEEP
    points.append(
        RunPoint(
            x="bimodal@0.8",
            config=_base_config(0.8, pattern=bimodal),
            sim=SimulationConfig(max_requests=_requests(scale)),
        )
    )
    # Degradation scenario.
    duration = _duration(scale)
    degradations = {sid: (DegradationEvent(duration * 0.25, 0.5),) for sid in (0, 1)}
    points.append(
        RunPoint(
            x="degraded@0.55",
            config=_base_config(0.55, degradations=degradations),
            sim=SimulationConfig(duration=duration, warmup_fraction=0.1),
        )
    )
    return Scenario(
        experiment_id="E7",
        title="Headline: mean-RCT reduction of DAS vs FCFS and vs Rein-SBF",
        x_label="scenario",
        metric="mean",
        points=tuple(points),
        schedulers=CORE_SCHEDULERS,
        notes="Paper claim: >15~50% vs FCFS; DAS >= Rein-SBF everywhere.",
    )


# ----------------------------------------------------------------------
# E8 — parameter sensitivity
# ----------------------------------------------------------------------
def e8_scenario(scale: float = 1.0) -> Scenario:
    """DAS sensitivity: demotion floor k_min and rate-EWMA alpha.

    Run on the degradation scenario, where both knobs matter most.
    """
    _check_scale(scale)
    duration = _duration(scale)
    degradations = {sid: (DegradationEvent(duration * 0.25, 0.5),) for sid in (0, 1)}
    point = RunPoint(
        x="degraded@0.55",
        config=_base_config(0.55, degradations=degradations),
        sim=SimulationConfig(duration=duration, warmup_fraction=0.1),
    )
    schedulers = [SBF]
    for k_min in (2.0, 4.0, 8.0):
        schedulers.append(
            SchedulerSpec(f"DAS k_min={k_min}", "das", {"k_min": k_min, "k_init": max(8.0, k_min)})
        )
    estimator_sweeps = (0.05, 0.2, 0.5)
    points = [point]
    for alpha in estimator_sweeps:
        cfg = dataclasses.replace(point.config, estimator_params={"alpha_rate": alpha})
        points.append(RunPoint(x=f"alpha_rate={alpha}", config=cfg, sim=point.sim))
    return Scenario(
        experiment_id="E8",
        title="DAS parameter sensitivity (degradation scenario)",
        x_label="configuration",
        metric="mean",
        points=tuple(points),
        schedulers=tuple(schedulers),
        notes="First point: default estimator; remaining points sweep alpha_rate.",
    )


# ----------------------------------------------------------------------
# E9 — scalability with cluster size
# ----------------------------------------------------------------------
def e9_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT vs cluster size at fixed per-server load 0.7."""
    _check_scale(scale)
    sizes = (8, 16, 32)
    points = []
    for n in sizes:
        points.append(
            RunPoint(
                x=n,
                config=_base_config(0.7, n_servers=n),
                sim=SimulationConfig(max_requests=_requests(scale)),
            )
        )
    return Scenario(
        experiment_id="E9",
        title="Scalability: mean RCT vs cluster size (load 0.7)",
        x_label="n_servers",
        metric="mean",
        points=tuple(points),
        schedulers=CORE_SCHEDULERS,
        notes="DAS is fully distributed; gains should persist with scale.",
    )


# ----------------------------------------------------------------------
# E10 — fairness / large-request slowdown
# ----------------------------------------------------------------------
def e10_scenario(scale: float = 1.0) -> Scenario:
    """P99 slowdown under the bimodal mix (starvation check).

    Reported metric is the p99 *slowdown* (RCT / own bottleneck demand):
    size-based policies can starve large multigets; DAS's aging bounds it.
    """
    _check_scale(scale)
    pattern = BIMODAL_SWEEP
    points = tuple(
        RunPoint(
            x=load,
            config=_base_config(load, pattern=pattern),
            sim=SimulationConfig(max_requests=_requests(scale)),
        )
        for load in (0.7, 0.9)
    )
    return Scenario(
        experiment_id="E10",
        title="Fairness: P99 slowdown under the bimodal mix",
        x_label="load",
        metric="p99_slowdown",
        points=points,
        schedulers=(FCFS, SchedulerSpec("SFQ", "sfq"), SBF, DAS),
        notes="slowdown = RCT / bottleneck demand of the request itself.",
    )


# ----------------------------------------------------------------------
# A1 — DAS ablation
# ----------------------------------------------------------------------
def a1_scenario(scale: float = 1.0) -> Scenario:
    """Ablate DAS's three mechanisms on the degradation scenario."""
    _check_scale(scale)
    duration = _duration(scale)
    degradations = {sid: (DegradationEvent(duration * 0.25, 0.5),) for sid in (0, 1)}
    points = (
        RunPoint(
            x="degraded@0.55",
            config=_base_config(0.55, degradations=degradations),
            sim=SimulationConfig(duration=duration, warmup_fraction=0.1),
        ),
        RunPoint(
            x="bimodal@0.8",
            config=_base_config(0.8, pattern=BIMODAL_SWEEP),
            sim=SimulationConfig(max_requests=_requests(scale)),
        ),
    )
    schedulers = (
        DAS,
        SchedulerSpec("DAS w/o adapt", "das", {"adaptive": False}),
        SchedulerSpec("DAS w/o last band", "das", {"last_band": False}),
        SchedulerSpec("DAS w/o SRPT front", "das", {"srpt_front": False}),
        SBF,
    )
    return Scenario(
        experiment_id="A1",
        title="DAS ablation: adaptation / last band / SRPT front",
        x_label="scenario",
        metric="mean",
        points=points,
        schedulers=schedulers,
        notes="Our ablation (not in the paper): isolates each mechanism.",
    )


# ----------------------------------------------------------------------
# A2 — feedback freshness
# ----------------------------------------------------------------------
def a2_scenario(scale: float = 1.0) -> Scenario:
    """DAS under piggyback / periodic / no feedback (degradation scenario)."""
    _check_scale(scale)
    duration = _duration(scale)
    degradations = {sid: (DegradationEvent(duration * 0.25, 0.5),) for sid in (0, 1)}
    base = _base_config(0.55, degradations=degradations)
    sim = SimulationConfig(duration=duration, warmup_fraction=0.1)
    modes = (
        ("piggyback", FeedbackConfig(mode=FeedbackMode.PIGGYBACK)),
        ("periodic-1ms", FeedbackConfig(mode=FeedbackMode.PERIODIC, interval=1e-3)),
        ("periodic-20ms", FeedbackConfig(mode=FeedbackMode.PERIODIC, interval=20e-3)),
        ("none", FeedbackConfig(mode=FeedbackMode.NONE)),
    )
    points = tuple(
        RunPoint(x=label, config=dataclasses.replace(base, feedback=fb), sim=sim)
        for label, fb in modes
    )
    return Scenario(
        experiment_id="A2",
        title="Feedback freshness: piggyback vs periodic vs none",
        x_label="feedback",
        metric="mean",
        points=points,
        schedulers=(DAS, SBF),
        notes="Without feedback DAS degrades to static SBF ordering.",
    )


# ----------------------------------------------------------------------
# X1 — extension (ours): DAS estimates reused for replica selection
# ----------------------------------------------------------------------
def x1_scenario(scale: float = 1.0) -> Scenario:
    """Replica-selection policies under Zipf skew, replication factor 3.

    DAS's per-server feedback estimates come for free; the
    :mod:`repro.selection` policies reuse them to steer GETs away from
    congested replicas.  ``tars`` (timeliness-aware scoring over the same
    ``ServerEstimates`` DAS reads) is compared against primary-only (the
    paper's setting) and blind round-robin at load 0.7 under Zipf(0.99)
    keys — the regime where the hot key's owner saturates.  The full
    policy shoot-out (including probe-based ``prequal``) is X3.
    """
    _check_scale(scale)
    selections = ("primary", "round_robin", "tars")
    points = []
    for selection in selections:
        points.append(
            RunPoint(
                x=selection,
                config=_base_config(
                    0.7,
                    pattern=BASELINE,  # Zipf skew is the point here
                    replication_factor=3,
                    replica_selection=selection,
                ),
                sim=SimulationConfig(max_requests=_requests(scale)),
            )
        )
    return Scenario(
        experiment_id="X1",
        title="Extension: replica selection from DAS estimates (Zipf, n=3)",
        x_label="selection",
        metric="mean",
        points=tuple(points),
        schedulers=(DAS, SBF),
        notes="Ours, not in the paper: estimate-driven replica selection.",
    )


# ----------------------------------------------------------------------
# X2 — extension (ours): surviving a server outage with timeout+retry
# ----------------------------------------------------------------------
def x2_scenario(scale: float = 1.0) -> Scenario:
    """Mean RCT with one server down for the middle half of the run.

    Points compare the unprotected cluster against timeout-and-retry over
    2-way replication.  With retries, requests route around the dead
    server; without, everything touching it stalls until recovery.
    """
    _check_scale(scale)
    duration = _duration(scale)
    outage = {0: ((duration * 0.25, duration * 0.75),)}
    variants = (
        ("no-retry", dict(outages=outage)),
        (
            "retry-r2",
            dict(
                outages=outage,
                replication_factor=2,
                op_timeout=0.02,
                max_retries=2,
            ),
        ),
        (
            "healthy",
            dict(replication_factor=2, op_timeout=0.02, max_retries=2),
        ),
    )
    points = []
    for label, overrides in variants:
        points.append(
            RunPoint(
                x=label,
                config=_base_config(0.5, **overrides),
                sim=SimulationConfig(duration=duration, warmup_fraction=0.0),
            )
        )
    return Scenario(
        experiment_id="X2",
        title="Extension: outage survival via op timeout + replica retry",
        x_label="configuration",
        metric="p999",
        points=tuple(points),
        schedulers=(DAS,),
        notes="Ours, not in the paper: fault injection with retries.",
    )


# ----------------------------------------------------------------------
# X3 — extension (ours): replica-selection shoot-out on a degraded fleet
# ----------------------------------------------------------------------
def x3_scenario(scale: float = 1.0) -> Scenario:
    """Every selection policy on a heterogeneous, mid-run-degraded fleet.

    Three-way replication under Zipf skew on a fleet where a quarter of
    the servers are permanently slower (speed 0.7) and two more lose 60%
    of their speed a quarter of the way in.  This is the regime replica
    selection exists for: load-oblivious policies (``primary``,
    ``random``, ``round_robin``) keep routing reads onto the slow and
    degraded replicas, while estimate- and probe-driven policies
    (``least_estimated_work``, ``power_of_d``, ``c3``, ``tars``,
    ``prequal``) shed them from the congested servers.  Single scheduler
    (DAS) so the selection axis is the only variable.
    """
    _check_scale(scale)
    duration = _duration(scale)
    speeds = tuple(0.7 if sid % 4 == 0 else 1.0 for sid in range(N_SERVERS))
    mean_speed = sum(speeds) / len(speeds)
    degradations = {
        sid: (DegradationEvent(duration * 0.25, 0.4),) for sid in (1, 2)
    }
    selections = (
        "primary",
        "random",
        "round_robin",
        "least_estimated_work",
        "power_of_d",
        "c3",
        "tars",
        "prequal",
    )
    points = []
    for selection in selections:
        points.append(
            RunPoint(
                x=selection,
                config=_base_config(
                    0.55,
                    pattern=BASELINE,  # Zipf skew: hot owners congest first
                    mean_speed=mean_speed,
                    server_speeds=speeds,
                    degradations=degradations,
                    replication_factor=3,
                    replica_selection=selection,
                ),
                sim=SimulationConfig(duration=duration, warmup_fraction=0.1),
            )
        )
    return Scenario(
        experiment_id="X3",
        title="Extension: selection policy shoot-out (degraded fleet, n=3)",
        x_label="selection",
        metric="mean",
        points=tuple(points),
        schedulers=(DAS,),
        notes="Ours, not in the paper: adaptive policies must beat "
        "primary and random on mean and p99 here.",
    )


# ----------------------------------------------------------------------
# X5 — extension (ours): fleet-scale selection vs control-plane cost
# ----------------------------------------------------------------------
#: Fleet sizes for the scale-out axis (the paper tops out at 16 servers).
X5_FLEETS = (128, 256, 512)
#: Adaptive policies compared at every fleet size.  ``prequal`` pays two
#: probe round-trips per request; ``dodoor`` pays one broadcast per
#: server per refresh interval regardless of the request rate; ``tars``
#: and ``power_of_d`` ride piggybacked feedback only.
X5_SELECTIONS = ("power_of_d", "tars", "prequal", "dodoor")
#: Dodoor reporter cadence of the fleet-size cells (the headline point:
#: at 256 servers this is where reports/request drops an order of
#: magnitude below prequal's probes/request).
X5_HEADLINE_INTERVAL = 10e-3
#: Extra dodoor refresh intervals swept at 256 servers (the headline
#: interval already covers 10 ms via the fleet axis).
X5_INTERVAL_SWEEP = (2e-3, 5e-3, 20e-3)


def _x5_overrides(selection: str, interval: float = X5_HEADLINE_INTERVAL) -> Dict[str, Any]:
    """Per-policy cluster knobs for one X5 cell."""
    overrides: Dict[str, Any] = dict(
        replication_factor=3,
        replica_selection=selection,
        # Multi-tenant keyspace: each client draws from its own slice, so
        # no two front-ends contend on the same keys — selection skew is
        # purely a load signal, not a popularity artifact.
        tenants=N_CLIENTS,
    )
    if selection == "prequal":
        overrides["probes_per_request"] = 2
    if selection == "dodoor":
        overrides["load_report_interval"] = interval
        # Keep cached entries valid across one missed report plus slack.
        overrides["replica_selection_params"] = {
            "max_staleness": max(25e-3, 2.5 * interval)
        }
    return overrides


def x5_scenario(scale: float = 1.0) -> Scenario:
    """Fleet-scale replica selection: RCT vs control-plane message cost.

    128/256/512 servers at fixed per-server load 0.7, three-way
    replication, uniform popularity partitioned into one keyspace slice
    per client (multi-tenant).  The adaptive policies differ in *how*
    they learn server load: ``prequal`` probes per request (control cost
    scales with the request rate), ``dodoor`` holds a bounded-stale load
    cache refreshed by periodic asynchronous server reports (control
    cost scales with servers/interval, independent of request rate),
    ``tars``/``power_of_d`` use free piggybacked feedback only.  A
    refresh-interval sweep at 256 servers traces dodoor's
    freshness-vs-overhead curve.  Per-cell control-plane accounting
    (``messages_sent{kind}``) surfaces through ``selection_stats()`` and
    the ``client_control_messages`` gauges.
    """
    _check_scale(scale)
    points = []
    for n in X5_FLEETS:
        for selection in X5_SELECTIONS:
            points.append(
                RunPoint(
                    x=f"{n}s/{selection}",
                    config=_base_config(
                        0.7, n_servers=n, **_x5_overrides(selection)
                    ),
                    sim=SimulationConfig(max_requests=_requests(scale)),
                )
            )
    for interval in X5_INTERVAL_SWEEP:
        points.append(
            RunPoint(
                x=f"256s/dodoor@{interval * 1e3:g}ms",
                config=_base_config(
                    0.7, n_servers=256, **_x5_overrides("dodoor", interval)
                ),
                sim=SimulationConfig(max_requests=_requests(scale)),
            )
        )
    return Scenario(
        experiment_id="X5",
        title="Extension: fleet-scale selection vs control-plane cost",
        x_label="fleet/selection",
        metric="p99",
        points=tuple(points),
        schedulers=(DAS,),
        notes="Ours, not in the paper: at 256+ servers dodoor must match "
        "prequal's tail within a guard band at an order of magnitude "
        "fewer control-plane messages per request.",
    )


# ----------------------------------------------------------------------
# X6 — extension (ours): chaos plans vs client resilience
# ----------------------------------------------------------------------
def x6_scenario(scale: float = 1.0) -> Scenario:
    """Tail RCT under a declarative fault plan × client protection matrix.

    Every faulty point shares the same fault window — 30% to 60% of the
    run — expressed as a :class:`~repro.faults.FaultPlan` (the same object
    the runtime's ``LocalCluster.apply_fault_plan`` accepts).  The crash
    plan is measured twice: with timeout+retry only, and with tail
    hedging plus a per-server failure detector on top; the hedged cell
    must beat the timeout-only cell on p99 because a hedge fires in a few
    milliseconds while a timeout burns the full 20 ms budget per attempt.
    Partition, packet-loss and slow-node plans round out the family.
    Use :func:`repro.faults.report.chaos_report` on a cell's re-run for
    phase-split p99 and time-to-recover.
    """
    _check_scale(scale)
    duration = _duration(scale)
    start, end = duration * 0.3, duration * 0.6
    protection: Dict[str, Any] = dict(
        replication_factor=3,
        replica_selection="tars",
        op_timeout=0.02,
        max_retries=2,
    )
    guarded: Dict[str, Any] = dict(
        protection,
        hedge=HedgePolicy(percentile=95.0, min_samples=20),
        failure_detector=FailureDetectorConfig(failure_threshold=3),
    )
    crash_plan = FaultPlan((Crash(0, at=start), Recover(0, at=end)))
    variants = (
        ("healthy", dict(guarded)),
        ("crash/timeout-only", dict(protection, fault_plan=crash_plan)),
        ("crash/hedge+cb", dict(guarded, fault_plan=crash_plan)),
        (
            "partition/hedge+cb",
            dict(
                guarded,
                fault_plan=FaultPlan(
                    (Partition(at=start, until=end, servers=(0, 1)),)
                ),
            ),
        ),
        (
            "flaky/hedge+cb",
            dict(
                guarded,
                fault_plan=FaultPlan(
                    (
                        PacketLoss(
                            at=start,
                            until=end,
                            probability=0.3,
                            servers=(0, 1, 2),
                            seed=7,
                        ),
                    )
                ),
            ),
        ),
        (
            "slownode/hedge+cb",
            dict(
                guarded,
                fault_plan=FaultPlan(
                    (SlowNode(0, at=start, until=end, factor=0.25),)
                ),
            ),
        ),
    )
    points = []
    for label, overrides in variants:
        points.append(
            RunPoint(
                x=label,
                config=_base_config(0.5, **overrides),
                sim=SimulationConfig(duration=duration, warmup_fraction=0.0),
            )
        )
    return Scenario(
        experiment_id="X6",
        title="Extension: chaos plans vs client resilience (hedge + breaker)",
        x_label="fault/protection",
        metric="p99",
        points=tuple(points),
        schedulers=(FCFS, DAS),
        notes="Ours, not in the paper: one declarative FaultPlan drives "
        "both sim and runtime; hedging + failure detection must beat "
        "timeout-only p99 under the crash plan.",
    )


def _x4_pattern(name: str, sizes) -> TrafficPattern:
    """Multiget uniform-popularity pattern over a heavy-tailed size mix.

    Fan-out 8 is deliberate: a request is as slow as its slowest slice,
    so a sub-1% population of large operations touches ``1-(1-p)^8`` of
    *requests* — the tail-at-scale amplification that makes size-blind
    scheduling visible at p99, exactly the regime Minos targets.
    """
    return TrafficPattern(
        name=name,
        description=f"X4 size mix: {name}",
        fanout=FixedFanout(k=8),
        sizes=sizes,
        popularity=UniformPopularity(),
    )


#: X4 lane knobs shared by every laned column.  The 0.9 small share
#: tracks the small class's demand fraction with headroom: larges keep a
#: guaranteed 10% (no DAS last-band starvation) while the weighted-fair
#: dispatcher spaces them too far apart to convoy (docs/sharding.md).
_X4_LANES = dict(inner="das", small_share=0.9, cutoff_quantile=0.99)


def x4_scenario(scale: float = 1.0) -> Scenario:
    """Size-aware lanes × scheduler × cutoff adaptation (Minos axis).

    Three heavy-tailed fan-out-8 size mixes — bimodal small/large and
    two truncated-Pareto tails (the ``alpha <= 1.5`` shapes the
    ``ParetoSize`` fix legalizes) — measured under plain FCFS/DAS and
    the ``laned`` composition.  The laned columns ablate the knobs the
    tentpole adds: inner policy (FCFS vs DAS within a lane), cutoff
    adaptation on/off (static 8 KiB initial), and the lane capacity
    split (tuned 0.90 vs naive 0.50 small share).

    Expected shape: Lanes+DAS beats plain DAS on p99 *and* p999 without
    degrading the mean — the large class keeps a guaranteed weighted-fair
    share instead of DAS last-band starvation, so the ``1-(1-p)^8`` of
    requests carrying a large slice stop inheriting a starved
    bottleneck, while small-only requests still never queue behind more
    than one large.
    """
    _check_scale(scale)
    mixes = (
        _x4_pattern(
            "bimodal",
            BimodalSize(small=512, large=262144, p_large=0.005),
        ),
        _x4_pattern(
            "pareto-1.3",
            ParetoSize(lo=2048.0, alpha=1.3, cap=1 << 20),
        ),
        _x4_pattern(
            "pareto-1.5",
            ParetoSize(lo=4096.0, alpha=1.5, cap=1 << 21),
        ),
    )
    points = tuple(
        RunPoint(
            x=pattern.name,
            config=_base_config(0.75, pattern=pattern),
            sim=SimulationConfig(max_requests=_requests(scale)),
        )
        for pattern in mixes
    )
    schedulers = (
        FCFS,
        DAS,
        SchedulerSpec("Lanes+FCFS", "laned", dict(_X4_LANES, inner="fcfs")),
        SchedulerSpec("Lanes+DAS", "laned", dict(_X4_LANES)),
        SchedulerSpec(
            "Lanes+DAS static cutoff",
            "laned",
            dict(_X4_LANES, adaptive_cutoff=False),
        ),
        SchedulerSpec(
            "Lanes+DAS 50/50 split",
            "laned",
            dict(_X4_LANES, small_share=0.5),
        ),
    )
    return Scenario(
        experiment_id="X4",
        title="Extension: size-aware two-lane service tier (Minos-style)",
        x_label="size mix",
        metric="p99",
        points=points,
        schedulers=schedulers,
        notes="Ours, not in the paper: size lane first, scheduler policy "
        "within a lane.  Lanes+DAS must beat plain DAS on p99 and p999 "
        "without degrading the mean; the static-cutoff and 50/50-split "
        "columns ablate the adaptation and the capacity split.",
    )


SCENARIOS: Dict[str, Callable[[float], Scenario]] = {
    "E1": e1_scenario,
    "E2": e2_scenario,
    "E3": e3_scenario,
    "E4": e4_scenario,
    "E5": e5_scenario,
    "E6": e6_scenario,
    "E7": e7_scenario,
    "E8": e8_scenario,
    "E9": e9_scenario,
    "E10": e10_scenario,
    "A1": a1_scenario,
    "A2": a2_scenario,
    "X1": x1_scenario,
    "X2": x2_scenario,
    "X3": x3_scenario,
    "X4": x4_scenario,
    "X5": x5_scenario,
    "X6": x6_scenario,
}


def get_scenario(experiment_id: str, scale: float = 1.0) -> Scenario:
    """Build the scenario for ``experiment_id`` at the given scale."""
    try:
        factory = SCENARIOS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return factory(scale)


def workload_scenario(ref: str, scale: float = 1.0) -> Scenario:
    """Scheduler-comparison grid over one declarative workload spec.

    ``ref`` is a registry name (``"mmpp-burst"``) or a spec-file path;
    the cell's :class:`ClusterConfig` carries it as ``workload=...`` so
    the resolved generator fields — and the spec's content fingerprint —
    land in the config repr the parallel engine's checkpoints key on.
    One x-axis point (the spec), the core scheduler columns, same
    cluster defaults and seed as every other scenario.
    """
    _check_scale(scale)
    from repro.workload.registry import resolve_workload

    spec = resolve_workload(ref)  # fail fast with the spec's own error
    config = ClusterConfig(
        n_servers=N_SERVERS,
        n_clients=N_CLIENTS,
        seed=SEED,
        keyspace_size=KEYSPACE,
        workload=ref,
    )
    point = RunPoint(
        x=spec.name,
        config=config,
        sim=SimulationConfig(max_requests=_requests(scale)),
    )
    return Scenario(
        experiment_id=f"W:{spec.name}",
        title=f"Workload spec {spec.name!r}: {spec.description or 'scheduler comparison'}",
        x_label="workload",
        metric="mean",
        points=(point,),
        schedulers=CORE_SCHEDULERS,
        notes="Declarative workload from the registry (docs/workloads.md).",
    )
