"""Experiment harness: one scenario per table/figure of the evaluation.

``SCENARIOS`` maps experiment ids (E1..E10, A1, A2 — see DESIGN.md §4) to
factories building a :class:`~repro.experiments.scenarios.Scenario`; the
:func:`~repro.experiments.runner.run_scenario` function executes every
(point × scheduler) cell sequentially,
:func:`~repro.experiments.parallel.run_scenario_parallel` fans the cells
out over a worker pool with identical results (see
``docs/experiments.md``), and the report module renders the same
rows/series the paper plots.
"""

from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.report import format_reduction_table, format_scenario_table
from repro.experiments.runner import (
    CellResult,
    ScenarioResult,
    run_scenario,
    write_observability_artifacts,
)
from repro.experiments.scenarios import (
    SCENARIOS,
    RunPoint,
    Scenario,
    SchedulerSpec,
    get_scenario,
)

__all__ = [
    "CellResult",
    "RunPoint",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "SchedulerSpec",
    "format_reduction_table",
    "format_scenario_table",
    "get_scenario",
    "run_scenario",
    "run_scenario_parallel",
    "write_observability_artifacts",
]
