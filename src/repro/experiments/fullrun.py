"""Generate EXPERIMENTS.md: run the whole suite and record paper-vs-measured.

This is the evaluation-record generator (DESIGN.md §4 maps experiment ids
to the paper's tables and figures; ``docs/experiments.md`` documents the
matrix).  Usage::

    python -m repro.experiments.fullrun [--scale 0.4] [--out EXPERIMENTS.md]
    python -m repro.experiments.fullrun --workers 4 --checkpoint .cells

Each experiment section contains the measured table, the DAS reductions
vs FCFS and vs Rein-SBF where applicable, and the paper expectation the
run is checked against.  ``--workers N`` fans the cells of each
experiment out over N processes (identical output, see
``docs/benchmarking.md``); ``--checkpoint DIR`` makes an interrupted
full run resumable cell by cell.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import List, Optional

from repro._version import __version__
from repro.experiments.parallel import run_scenario_parallel
from repro.experiments.report import scenario_markdown
from repro.experiments.runner import (
    ScenarioResult,
    run_scenario,
    write_observability_artifacts,
)
from repro.experiments.scenarios import SCENARIOS, get_scenario, workload_scenario

#: What the paper (abstract) leads us to expect, per experiment.
EXPECTATIONS = {
    "E1": "DAS cuts mean RCT vs FCFS by >15% from moderate load, ~50%+ when "
          "hot; DAS tracks or beats Rein-SBF at every load.",
    "E2": "Size-based policies trade some tail for mean at heavy load; DAS's "
          "aging keeps P99 within the same decade as FCFS.",
    "E3": "Mean RCT grows with fan-out (max structure); DAS's win holds "
          "across fan-outs.",
    "E4": "Under Markov-modulated load DAS absorbs spikes; large win vs "
          "FCFS at every dwell; adaptation never hurts.",
    "E5": "With degraded servers DAS's rate feedback beats both FCFS and "
          "Rein-SBF — the 'time-varying server performance' claim.",
    "E6": "DAS wins on every traffic pattern; biggest wins on wide "
          "request-size spreads (bimodal/heavy-tail).",
    "E7": "Headline: >15~50% mean-RCT reduction vs FCFS; DAS >= Rein-SBF "
          "under various scenarios (abstract, verbatim).",
    "E8": "DAS's win is robust to its constants (demotion floor, rate-EWMA "
          "alpha) — no sensitivity cliff.",
    "E9": "Fully distributed: the advantage persists as the cluster scales.",
    "E10": "DAS bounds large-multiget starvation (p99 slowdown within a "
           "moderate factor of FCFS) while keeping the mean win.",
    "A1": "(ours) SRPT-front ordering carries most of the mean win; last "
          "band and adaptation are protective.",
    "A2": "(ours) piggyback feedback matches periodic broadcast at zero "
          "message cost; without feedback DAS collapses to Rein-SBF.",
    "X1": "(ours, extension) spreading reads over replicas beats "
          "primary-only under Zipf skew; selection driven by DAS's "
          "queued-work estimates matches or beats blind round-robin at "
          "zero extra message cost.",
    "X2": "(ours, extension) with op timeouts and replica retries a "
          "mid-run server outage barely moves the tail; unprotected, "
          "every request touching the dead server stalls until recovery.",
    "X3": "(ours, extension) on a degraded heterogeneous fleet every "
          "estimate- or probe-driven selection policy (least-work, "
          "power-of-d, C3, Tars, Prequal) beats both load-oblivious "
          "baselines (primary, random) on mean and P99 RCT; the scored "
          "policies cut the tail the furthest.",
    "X4": "(ours, extension) at fan-out 8 a sub-1% large-op class taints "
          "~1-(1-p)^8 of requests, so DAS's last-band starvation of "
          "larges lands on the request tail; the size-aware two-lane "
          "tier (Minos-style, WFQ dispatch, adaptive cutoff) beats "
          "plain DAS on P99 and P999 under bimodal and alpha<=1.5 "
          "Pareto mixes without degrading mean RCT; a 50/50 split or "
          "frozen cutoff forfeits the win.",
    "X5": "(ours, extension) at 128-512 servers the Dodoor-style load "
          "cache (d-choices over bounded-stale periodic reports) keeps "
          "P99 RCT within a guard band of probe-per-request Prequal "
          "while sending an order of magnitude fewer control-plane "
          "messages per request — report cost scales with "
          "servers/interval, not with the request rate; the refresh "
          "sweep at 256 servers traces freshness vs overhead.",
    "X6": "(ours, extension) under a mid-run crash, timeout-only "
          "retries pay the full op-timeout on every request touching "
          "the dead server, while quantile hedging plus a failure "
          "detector keeps P99 within a small factor of the healthy "
          "cell; partitions, flaky links, and slow nodes show the same "
          "ordering.",
}


_METRIC_LABELS = {
    "mean": "mean-RCT",
    "p50": "P50-RCT",
    "p99": "P99-RCT",
    "p999": "P99.9-RCT",
    "mean_slowdown": "mean-slowdown",
    "p99_slowdown": "P99-slowdown",
}


def _reduction_lines(result: ScenarioResult) -> List[str]:
    labels = {spec.label for spec in result.scenario.schedulers}
    if "DAS" not in labels:
        return []
    metric = result.scenario.metric
    metric_label = _METRIC_LABELS.get(metric, metric)
    lines = []
    for baseline in ("FCFS", "Rein-SBF"):
        if baseline in labels:
            values = result.reduction_vs(baseline, "DAS")
            rendered = ", ".join(
                f"{x}: {v * 100:.1f}%" for x, v in zip(result.xs(), values)
            )
            lines.append(
                f"*DAS {metric_label} reduction vs {baseline}:* {rendered}"
            )
    return lines


def render_section(result: ScenarioResult) -> str:
    """Render one experiment's EXPERIMENTS.md section (table + notes)."""
    scenario = result.scenario
    parts = [
        f"## {scenario.experiment_id} — {scenario.title}",
        "",
        f"**Paper expectation.** {EXPECTATIONS.get(scenario.experiment_id, '-')}",
        "",
        f"**Measured** (metric: `{scenario.metric}`"
        + (", milliseconds):" if scenario.metric in
           {"mean", "p50", "p90", "p95", "p99", "p999", "std"} else "):"),
        "",
        scenario_markdown(result),
        "",
    ]
    for line in _reduction_lines(result):
        parts.append(line)
        parts.append("")
    if scenario.notes:
        parts.append(f"*Note.* {scenario.notes}")
        parts.append("")
    parts.append(f"*({len(result.cells)} cells, {result.wall_seconds:.0f}s wall)*")
    parts.append("")
    return "\n".join(parts)


HEADER = """# EXPERIMENTS — paper vs measured

Reproduction record for *"Cutting the Request Completion Time in Key-value
Stores with Distributed Adaptive Scheduler"* (ICDCS 2021).  Only the
abstract of the paper was available, so "paper expectation" states what the
abstract claims (or what the reconstruction targets); "measured" is this
repository's output.  Absolute numbers are not comparable to the authors'
(different simulator, different constants); the comparison is the **shape**:
who wins, by roughly what factor, and where.

Regenerate any experiment with `repro-experiments <ID>`; regenerate this
file with `python -m repro.experiments.fullrun`.

**Summary of the reproduction.**

* The abstract's headline — *"DAS reduces the mean request completion time
  by more than 15~50% compared to the default first come first served
  algorithm"* — reproduces: measured reductions vs FCFS grow from ~12% at
  load 0.6 through ~21% (0.7) and ~40% (0.8) to ~49% at load 0.9 on the
  baseline mix (E1), and reach 45–95% on the bimodal mix and under server
  degradation (E5–E7).
* The abstract's comparison — *"outperforms the existing Rein-SBF algorithm
  under various scenarios"* — reproduces as: parity on homogeneous healthy
  clusters (DAS degrades to SBF ordering with zero information, by design)
  and consistent 25–37% wins wherever server performance varies (E5
  degradation, E8 sensitivity, A2 feedback), plus bounded starvation which
  pure SBF lacks (E10; a fairness-vs-mean trade FCFS wins by definition).
"""


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and write the EXPERIMENTS.md record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--out", type=Path, default=Path("EXPERIMENTS.md"))
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids (default: all)")
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory for per-experiment metrics/trace "
                             "artifacts (default: <out dir>/artifacts)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes per experiment "
                             "(default 1 = sequential; 0 = one per CPU)")
    parser.add_argument("--checkpoint", type=Path, default=None, metavar="DIR",
                        help="per-cell checkpoint directory; reruns resume "
                             "from the finished cells")
    parser.add_argument("--workload", action="append", default=[],
                        metavar="NAME|PATH",
                        help="also run a scheduler comparison on this "
                             "declarative workload spec (registry name or "
                             ".toml/.json file; repeatable — see "
                             "docs/workloads.md)")
    args = parser.parse_args(argv)
    artifacts_dir = (
        args.artifacts if args.artifacts is not None
        else args.out.parent / "artifacts"
    )

    if args.only is not None:
        ids = args.only
    elif args.workload:
        ids = []  # `--workload X` alone runs just that spec, not the suite
    else:
        ids = sorted(SCENARIOS)
    runs = [("experiment", i) for i in ids] + [
        ("workload", ref) for ref in args.workload
    ]
    sections = []
    t0 = time.time()
    for kind, ref in runs:
        print(f"[fullrun] running {ref} at scale {args.scale} ...",
              flush=True)
        if kind == "experiment":
            scenario = get_scenario(ref, scale=args.scale)
        else:
            scenario = workload_scenario(ref, scale=args.scale)
        if args.workers == 1 and args.checkpoint is None:
            result = run_scenario(scenario)
        else:
            result = run_scenario_parallel(
                scenario,
                workers=args.workers or None,
                checkpoint_dir=args.checkpoint,
            )
        sections.append(render_section(result))
        written = write_observability_artifacts(result, artifacts_dir)
        print(f"[fullrun]   done in {result.wall_seconds:.0f}s "
              f"({', '.join(p.name for p in written)})", flush=True)

    stamp = (
        f"\n---\n\nGenerated by `repro.experiments.fullrun` "
        f"(repro {__version__}, scale {args.scale}, "
        f"{time.time() - t0:.0f}s total).\n"
    )
    args.out.write_text(HEADER + "\n" + "\n".join(sections) + stamp,
                        encoding="utf-8")
    print(f"[fullrun] wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
