"""Execute scenario grids sequentially and collect per-cell results.

This is the *reference* runner: :func:`run_cell` builds one cluster from
one ``(RunPoint, SchedulerSpec)`` cell, runs it to completion, and
condenses the outcome into a :class:`CellResult` (RCT summary, slowdown
percentiles, observability snapshot); :func:`run_scenario` walks the
grid in order and assembles a :class:`ScenarioResult`.  The parallel
engine (:mod:`repro.experiments.parallel`) reuses :func:`run_cell`
unchanged and is validated cell-for-cell against this module — see
``docs/experiments.md``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kvstore.cluster import Cluster, RunResult
from repro.metrics.summary import SummaryStats
from repro.experiments.scenarios import RunPoint, Scenario, SchedulerSpec

#: Metrics computed from per-request RCT/slowdown arrays.
_SUMMARY_METRICS = {"mean", "p50", "p90", "p95", "p99", "p999", "std"}
_SLOWDOWN_METRICS = {"mean_slowdown", "p99_slowdown"}


@dataclass
class CellResult:
    """Outcome of one (point, scheduler) cell."""

    x: object
    scheduler: str
    summary: SummaryStats
    mean_slowdown: float
    p99_slowdown: float
    utilization: float
    requests: int
    wall_seconds: float
    #: Registry snapshot and sampled request traces captured by the run
    #: (see :mod:`repro.obs`); written out as experiment artifacts.
    metrics: Dict[str, Any] = field(default_factory=dict)
    traces: List[Dict[str, Any]] = field(default_factory=list)
    prometheus: str = ""

    def metric(self, name: str) -> float:
        """Look up a reported metric by name."""
        if name in _SUMMARY_METRICS:
            return getattr(self.summary, name)
        if name == "mean_slowdown":
            return self.mean_slowdown
        if name == "p99_slowdown":
            return self.p99_slowdown
        raise ConfigError(f"unknown metric {name!r}")


@dataclass
class ScenarioResult:
    """All cells of one scenario run."""

    scenario: Scenario
    cells: Dict[Tuple[object, str], CellResult]
    wall_seconds: float

    def cell(self, x: object, scheduler_label: str) -> CellResult:
        """Look up one cell by its grid coordinates."""
        try:
            return self.cells[(x, scheduler_label)]
        except KeyError:
            raise ConfigError(
                f"no cell for point {x!r} scheduler {scheduler_label!r}"
            ) from None

    def series(self, scheduler_label: str, metric: Optional[str] = None) -> List[float]:
        """This scheduler's metric across the scenario's points, in order."""
        metric = metric or self.scenario.metric
        return [
            self.cell(p.x, scheduler_label).metric(metric)
            for p in self.scenario.points
        ]

    def xs(self) -> List[object]:
        """The scenario's x-axis values, in point order."""
        return [p.x for p in self.scenario.points]

    def reduction_vs(
        self, baseline_label: str, treatment_label: str, metric: Optional[str] = None
    ) -> List[float]:
        """Fractional reduction of treatment vs baseline at each point."""
        base = self.series(baseline_label, metric)
        treat = self.series(treatment_label, metric)
        return [1.0 - t / b if b > 0 else float("nan") for b, t in zip(base, treat)]


def run_cell(point: RunPoint, scheduler: SchedulerSpec) -> CellResult:
    """Run one (point, scheduler) cell and summarize it."""
    config = dataclasses.replace(
        point.config, scheduler=scheduler.name, scheduler_params=dict(scheduler.params)
    )
    t0 = time.perf_counter()
    cluster = Cluster(config)
    result: RunResult = cluster.run(point.sim)
    wall = time.perf_counter() - t0
    slowdowns = result.collector.slowdowns(result.warmup_time)
    if slowdowns.size == 0:
        raise ConfigError(
            f"cell ({point.x!r}, {scheduler.label}) completed no requests "
            "after warmup — increase the run length"
        )
    return CellResult(
        x=point.x,
        scheduler=scheduler.label,
        summary=result.summary(),
        mean_slowdown=float(slowdowns.mean()),
        p99_slowdown=float(np.percentile(slowdowns, 99)),
        utilization=result.mean_utilization,
        requests=result.requests_completed,
        wall_seconds=wall,
        # Gauges are evaluated here, while queues are still live, so the
        # snapshot records end-of-run queue truth (k, band lengths, ...).
        metrics=cluster.registry.snapshot(),
        traces=cluster.tracer.as_dicts(),
        prometheus=cluster.registry.to_prometheus(
            extra_labels={"scheduler": scheduler.label}
        ),
    )


def write_observability_artifacts(
    result: ScenarioResult, directory: Path
) -> List[Path]:
    """Write the scenario's metrics/trace artifacts next to its results.

    Two files per scenario, named by experiment id:

    * ``<EID>.metrics.json`` — every cell's registry snapshot plus its
      sampled request traces;
    * ``<EID>.metrics.prom`` — Prometheus text exposition for one
      representative cell (the first DAS cell when present).  One cell
      only: concatenating registries would repeat ``# TYPE`` lines,
      which the exposition format forbids.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    eid = result.scenario.experiment_id
    cells = [
        {
            "x": cell.x,
            "scheduler": cell.scheduler,
            "requests": cell.requests,
            "metrics": cell.metrics,
            "traces": cell.traces,
        }
        for cell in result.cells.values()
    ]
    json_path = directory / f"{eid}.metrics.json"
    json_path.write_text(
        json.dumps({"experiment_id": eid, "cells": cells}, indent=1, default=str),
        encoding="utf-8",
    )
    written = [json_path]
    representative = next(
        (c for c in result.cells.values() if c.scheduler == "DAS" and c.prometheus),
        next((c for c in result.cells.values() if c.prometheus), None),
    )
    if representative is not None:
        prom_path = directory / f"{eid}.metrics.prom"
        prom_path.write_text(representative.prometheus, encoding="utf-8")
        written.append(prom_path)
    return written


def run_scenario(
    scenario: Scenario,
    progress: Optional[Callable[[str], None]] = None,
) -> ScenarioResult:
    """Run every cell of ``scenario`` (sequentially, deterministically)."""
    t0 = time.perf_counter()
    cells: Dict[Tuple[object, str], CellResult] = {}
    for point in scenario.points:
        for scheduler in scenario.schedulers:
            if progress is not None:
                progress(
                    f"[{scenario.experiment_id}] point={point.x!r} "
                    f"scheduler={scheduler.label}"
                )
            cells[(point.x, scheduler.label)] = run_cell(point, scheduler)
    return ScenarioResult(
        scenario=scenario,
        cells=cells,
        wall_seconds=time.perf_counter() - t0,
    )
