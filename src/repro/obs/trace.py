"""Per-request trace spans: tag → enqueue → service → reply.

A *request trace* records the life of one sampled multiget: the moment
the client tagged it, one :class:`OpSpan` per operation (enqueue at the
server, service start/end, plus the scheduler decisions taken — band
assignment, the demotion threshold at enqueue, and whether the op was
later promoted out of the last band), and the moment the last reply
landed back at the client.

Scheduler decisions are annotated unconditionally by the queues into the
operation's ``tag`` dict (three dict writes — far cheaper than deciding
per-op whether tracing is on); the *span assembly* is what gets sampled.
Sampling is deterministic (every ``1/sample_rate``-th completed request,
starting with the first), so short test runs always produce at least one
trace and long runs stay affordable.

Tag keys written by queues (``obs.*`` is reserved for observability)::

    obs.band       "front" | "last"     band chosen at enqueue
    obs.threshold  float                demotion threshold used to classify
    obs.promoted   True                 op aged out of the last band
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

#: Tag keys the queues use to annotate scheduling decisions.
OBS_BAND = "obs.band"
OBS_THRESHOLD = "obs.threshold"
OBS_PROMOTED = "obs.promoted"

#: Trace meta key listing the fault kinds active when a request completed
#: (comma-joined, e.g. ``"crash,packet_loss"``); set only during chaos runs.
OBS_FAULT = "obs.fault"

#: Tag key a client sets to ask servers to return span timestamps.
TRACE_REQUESTED = "trace"


def _none_if_nan(value: float) -> Optional[float]:
    return None if math.isnan(value) else value


@dataclass
class OpSpan:
    """Timing + decisions for one operation at one server."""

    key: str
    server_id: int
    enqueue: float = float("nan")
    service_start: float = float("nan")
    service_end: float = float("nan")
    band: Optional[str] = None
    threshold: Optional[float] = None
    promoted: bool = False

    @classmethod
    def from_op(cls, op: Any, server_id: Optional[int] = None) -> "OpSpan":
        """Build a span from any op-shaped object (sim or runtime).

        Reads ``key``/``enqueue_time``/``start_time``/``finish_time`` and
        the ``obs.*`` tag annotations.
        """
        tag = getattr(op, "tag", {}) or {}
        sid = server_id if server_id is not None else getattr(op, "server_id", -1)
        return cls(
            key=getattr(op, "key", ""),
            server_id=sid,
            enqueue=getattr(op, "enqueue_time", float("nan")),
            service_start=getattr(op, "start_time", float("nan")),
            service_end=getattr(op, "finish_time", float("nan")),
            band=tag.get(OBS_BAND),
            threshold=tag.get(OBS_THRESHOLD),
            promoted=bool(tag.get(OBS_PROMOTED, False)),
        )

    def monotone(self) -> bool:
        """Enqueue <= service_start <= service_end (NaNs fail)."""
        return self.enqueue <= self.service_start <= self.service_end


@dataclass
class RequestTrace:
    """One sampled request: client-side endpoints plus per-op spans."""

    request_id: int
    tag_time: float
    reply_time: float = float("nan")
    ops: List[OpSpan] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def monotone(self) -> bool:
        """True when tag <= every op's enqueue chain <= reply."""
        if math.isnan(self.tag_time) or math.isnan(self.reply_time):
            return False
        for span in self.ops:
            if not span.monotone():
                return False
            if not (self.tag_time <= span.enqueue and span.service_end <= self.reply_time):
                return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        # Unset timestamps are NaN internally; export them as None so the
        # dicts compare equal across process boundaries (NaN != NaN breaks
        # parallel-vs-sequential identity checks) and serialize to valid
        # strict JSON (null, not the nonstandard NaN token).
        out = asdict(self)
        out["reply_time"] = _none_if_nan(out["reply_time"])
        for op in out["ops"]:
            for when in ("enqueue", "service_start", "service_end"):
                op[when] = _none_if_nan(op[when])
        return out


class Tracer:
    """Deterministic sampling collector of request traces.

    Parameters
    ----------
    sample_rate:
        Fraction of requests to trace, in [0, 1].  0 disables tracing;
        1 traces everything.  Sampling is stride-based: the first request
        is always sampled, then every ``round(1/rate)``-th thereafter.
    capacity:
        Retention bound; once full, the oldest traces are dropped (the
        collector is a ring, not a leak).
    """

    def __init__(self, sample_rate: float = 1 / 128, capacity: int = 512):
        if not 0 <= sample_rate <= 1:
            raise ConfigError("sample_rate must be in [0, 1]")
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        self.sample_rate = sample_rate
        self.capacity = capacity
        self._stride = 0 if sample_rate == 0 else max(1, round(1 / sample_rate))
        self._seen = 0
        self.sampled = 0
        self.dropped = 0
        self._traces: List[RequestTrace] = []

    @property
    def enabled(self) -> bool:
        return self._stride > 0

    def should_sample(self) -> bool:
        """Decide (and count) one request; deterministic, no RNG."""
        if self._stride == 0:
            return False
        take = self._seen % self._stride == 0
        self._seen += 1
        return take

    def record(self, trace: RequestTrace) -> None:
        self.sampled += 1
        self._traces.append(trace)
        if len(self._traces) > self.capacity:
            del self._traces[0]
            self.dropped += 1

    @property
    def traces(self) -> List[RequestTrace]:
        return list(self._traces)

    def clear(self) -> None:
        self._traces.clear()

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [t.as_dict() for t in self._traces]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dicts(), indent=indent)
