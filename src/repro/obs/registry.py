"""Counter/gauge/histogram registry with Prometheus + JSON export.

Design goals, in order:

1. **Hot-path cost is one attribute bump.**  ``Counter.inc`` adds to a
   float; ``Gauge.set`` assigns one.  No locks, no label hashing per
   update — the label resolution happens once, at registration time.
2. **Truth over copies.**  Gauges can be *callback-backed* (``fn=``), so
   an export reads the live value straight from the owning object (a
   queue's ``front_length``, a set of writers' ``len``) instead of a
   snapshot someone forgot to refresh.  This is what lets tests assert
   "the exported gauge equals queue-internal truth".
3. **Two export surfaces.**  :meth:`MetricsRegistry.snapshot` returns a
   JSON-able dict; :meth:`MetricsRegistry.to_prometheus` renders the
   text exposition format (counters/gauges/summaries) so any scraper or
   human can read a dump.

Naming scheme (documented in ``docs/architecture.md``): metric names are
``snake_case`` with a subsystem prefix (``das_``, ``executor_``,
``server_``, ``client_``); monotonically increasing values end in
``_total``; labels identify the entity (``server="3"``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigError
from repro.metrics.percentiles import P2Quantile

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Dict[str, str]] = None) -> str:
    items = list(key)
    if extra:
        items = sorted(items + [(str(k), str(v)) for k, v in extra.items()])
    if not items:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count; ``inc`` is a plain attribute bump."""

    __slots__ = ("name", "help", "label_key", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.label_key = _label_key(labels or {})
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters only go up")
        self.value += amount

    def get(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value; either set explicitly or callback-backed."""

    __slots__ = ("name", "help", "label_key", "_value", "fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help
        self.label_key = _label_key(labels or {})
        self._value: float = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ConfigError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self.fn is not None:
            raise ConfigError(f"gauge {self.name} is callback-backed")
        self._value += amount

    def get(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Streaming distribution: count/sum/min/max plus P² quantiles.

    Bounded memory regardless of sample volume — each tracked quantile is
    five P² markers, so a multi-hour run costs the same as a test run.
    """

    __slots__ = ("name", "help", "label_key", "count", "sum", "min", "max", "_quantiles")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        quantiles: Iterable[float] = (0.5, 0.9, 0.99),
    ):
        self.name = name
        self.help = help
        self.label_key = _label_key(labels or {})
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._quantiles = {q: P2Quantile(q) for q in quantiles}

    def observe(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for est in self._quantiles.values():
            est.update(x)

    def quantile(self, q: float) -> float:
        if self.count == 0:
            return float("nan")
        return self._quantiles[q].value

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }
        for q in self._quantiles:
            out[f"p{q * 100:g}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments.

    Instruments are identified by ``(name, labels)``; asking twice returns
    the same object, so a restarted component keeps counting into the
    same series (a server's lifetime view survives executor restarts).
    """

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}

    # -- registration ---------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigError(
                    f"metric {name!r} already registered as {type(existing).__name__}"
                )
            return existing
        metric = cls(name, help=help, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels, fn=fn)
        if fn is not None:
            # Re-registration after a component restart rebinds the
            # callback to the live object (the old one is gone).
            gauge.fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        quantiles: Iterable[float] = (0.5, 0.9, 0.99),
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, quantiles=quantiles)

    # -- lookup ---------------------------------------------------------
    def get(self, name: str, **labels: str):
        """The instrument registered under ``(name, labels)``, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Current numeric value of a counter or gauge (for tests)."""
        metric = self.get(name, **labels)
        if metric is None:
            raise ConfigError(f"no metric {name!r} with labels {labels!r}")
        if isinstance(metric, Histogram):
            raise ConfigError(f"{name!r} is a histogram; use .summary()")
        return metric.get()

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able snapshot: ``{counters: {...}, gauges: {...}, histograms: {...}}``.

        Keys are ``name`` or ``name{label="v",...}``; callback gauges are
        evaluated at snapshot time, so the numbers are live truth.
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for (name, key), metric in sorted(self._metrics.items()):
            rendered = name + _render_labels(key)
            if isinstance(metric, Counter):
                out["counters"][rendered] = metric.get()
            elif isinstance(metric, Gauge):
                out["gauges"][rendered] = metric.get()
            else:
                out["histograms"][rendered] = metric.summary()
        return out

    def to_prometheus(self, extra_labels: Optional[Dict[str, str]] = None) -> str:
        """Prometheus text exposition of every registered instrument.

        ``extra_labels`` are appended to every sample — used by the
        experiment runner to distinguish per-cell registries in one file.
        """
        by_name: Dict[str, list] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append(metric)
        lines = []
        for name, metrics in by_name.items():
            first = metrics[0]
            if first.help:
                lines.append(f"# HELP {name} {first.help}")
            ptype = "summary" if isinstance(first, Histogram) else first.kind
            lines.append(f"# TYPE {name} {ptype}")
            for metric in metrics:
                if isinstance(metric, Histogram):
                    for q, est in metric._quantiles.items():
                        labels = _render_labels(
                            metric.label_key,
                            dict(extra_labels or {}, quantile=f"{q:g}"),
                        )
                        value = est.value if metric.count else float("nan")
                        lines.append(f"{name}{labels} {value}")
                    suffix = _render_labels(metric.label_key, extra_labels)
                    lines.append(f"{name}_count{suffix} {metric.count}")
                    lines.append(f"{name}_sum{suffix} {metric.sum}")
                else:
                    labels = _render_labels(metric.label_key, extra_labels)
                    lines.append(f"{name}{labels} {metric.get()}")
        return "\n".join(lines) + "\n" if lines else ""
