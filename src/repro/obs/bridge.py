"""Bind live scheduler/queue state to registry gauges.

The bridge registers *callback-backed* gauges that read the queue's own
attributes at export time, so the exported numbers are the queue's truth
by construction (no copy to go stale).  Duck-typed on purpose: any
:class:`~repro.schedulers.base.ServerQueue` gets the generic gauges, and
DAS-shaped queues (``controller``/band counters present) additionally get
the adaptive-scheduler set — without this module importing any policy.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry


def register_engine_gauges(registry: MetricsRegistry, env) -> None:
    """Register live gauges over the environment's event core.

    Opt-in (benchmarks, examples, ad-hoc debugging): cell runs do *not*
    register these, because the values differ between the ``heap`` and
    ``array`` backends and would break the heap-vs-array metrics-snapshot
    equality that the trace-identity tests pin.
    """
    registry.gauge(
        "sim_now", "Current simulation time", fn=lambda: env.now
    )
    registry.gauge(
        "sim_pending_events",
        "Events currently scheduled in the event core",
        fn=lambda: float(env.core_stats()["pending"]),
        engine=env.engine,
    )
    registry.gauge(
        "sim_bucket_resizes_total",
        "Calendar-queue width rebuilds (monotone; 0 on the heap backend)",
        fn=lambda: float(env.core_stats()["bucket_resizes"]),
        engine=env.engine,
    )
    registry.gauge(
        "sim_slot_reuse_hit_rate",
        "Bulk-lane slot free-list hit rate (0 on the heap backend)",
        fn=lambda: env.core_stats()["slot_reuse_hit_rate"],
        engine=env.engine,
    )


def register_queue_gauges(registry: MetricsRegistry, queue, server_id) -> None:
    """Register live gauges for one server's queue under ``server=<id>``."""
    sid = str(server_id)
    registry.gauge(
        "queue_length", "Operations currently queued", fn=lambda: len(queue), server=sid
    )
    registry.gauge(
        "queue_queued_demand",
        "Total queued service demand (reference seconds)",
        fn=lambda: queue.queued_demand,
        server=sid,
    )
    lanes = getattr(queue, "lanes", None)
    if lanes is not None:
        registry.gauge(
            "lane_size_cutoff",
            "Current small/large routing cutoff (bytes)",
            fn=lambda: queue.cutoff,
            server=sid,
        )
        for lane in lanes:
            registry.gauge(
                "lane_queue_length",
                "Operations queued in this lane",
                fn=lambda lq=queue, ln=lane: float(lq.lane_length(ln)),
                server=sid,
                lane=lane,
            )
            registry.gauge(
                "lane_queued_demand",
                "Queued service demand in this lane (reference seconds)",
                fn=lambda lq=queue, ln=lane: lq.lane_demand(ln),
                server=sid,
                lane=lane,
            )
            registry.gauge(
                "lane_routed_total",
                "Operations routed to this lane (monotone)",
                fn=lambda lq=queue, ln=lane: float(lq.routed[ln]),
                server=sid,
                lane=lane,
            )
            registry.gauge(
                "lane_served_demand",
                "Demand-seconds dispatched from this lane (monotone)",
                fn=lambda lq=queue, ln=lane: lq.consumed[ln],
                server=sid,
                lane=lane,
            )
    controller = getattr(queue, "controller", None)
    if controller is None:
        return
    registry.gauge(
        "das_k", "Adaptive demotion multiplier k", fn=lambda: controller.k, server=sid
    )
    registry.gauge(
        "das_queue_pressure",
        "EWMA queue length driving the controller",
        fn=lambda: controller.queue_pressure,
        server=sid,
    )
    registry.gauge(
        "das_threshold",
        "Current demotion threshold (RPT seconds)",
        fn=lambda: queue.threshold,
        server=sid,
    )
    registry.gauge(
        "das_rpt_scale",
        "EWMA of tagged RPTs (the threshold scale)",
        fn=lambda: queue.rpt_scale,
        server=sid,
    )
    registry.gauge(
        "das_front_length",
        "Live operations in the front band",
        fn=lambda: queue.front_length,
        server=sid,
    )
    registry.gauge(
        "das_last_length",
        "Live operations in the last band",
        fn=lambda: queue.last_length,
        server=sid,
    )
    registry.gauge(
        "das_demotions_total",
        "Operations demoted to the last band (monotone)",
        fn=lambda: queue.demotions,
        server=sid,
    )
    registry.gauge(
        "das_promotions_total",
        "Starvation promotions out of the last band (monotone)",
        fn=lambda: queue.promotions,
        server=sid,
    )
