"""Observability: counter/gauge/histogram registry + request tracing.

See ``docs/architecture.md`` ("Observability") for the span lifecycle,
the metric naming scheme, and the export formats.
"""

from repro.obs.bridge import register_engine_gauges, register_queue_gauges
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    OBS_BAND,
    OBS_FAULT,
    OBS_PROMOTED,
    OBS_THRESHOLD,
    TRACE_REQUESTED,
    OpSpan,
    RequestTrace,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_BAND",
    "OBS_FAULT",
    "OBS_PROMOTED",
    "OBS_THRESHOLD",
    "OpSpan",
    "RequestTrace",
    "TRACE_REQUESTED",
    "Tracer",
    "register_engine_gauges",
    "register_queue_gauges",
]
